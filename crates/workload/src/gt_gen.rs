//! The Cobra-style general-transaction (GT) workload generator.
//!
//! Each GT workload consists of 20% read-only, 40% write-only and 40%
//! read-modify-write transactions (the split used in the paper's end-to-end
//! experiments), with a configurable number of operations per transaction.
//! Unlike mini-transactions, GTs may perform blind writes and may touch many
//! objects, which is what drives both the higher abort rates (Figure 11) and
//! the denser constraint graphs the baseline checkers have to solve.

use crate::dist::KeySampler;
use crate::spec::{GtWorkloadSpec, ReqOp, SessionWorkload, TxnTemplate, Workload};
use mtc_history::Key;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The three GT transaction classes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum TxnClass {
    ReadOnly,
    WriteOnly,
    ReadModifyWrite,
}

/// Generates a GT workload from `spec`.
pub fn generate_gt_workload(spec: &GtWorkloadSpec) -> Workload {
    let mut rng = StdRng::seed_from_u64(spec.seed);
    let sampler = KeySampler::new(spec.num_keys, spec.distribution);
    let mut sessions = Vec::with_capacity(spec.sessions as usize);
    for s in 0..spec.sessions {
        let mut txns = Vec::with_capacity(spec.txns_per_session as usize);
        for _ in 0..spec.txns_per_session {
            txns.push(generate_gt_txn(&mut rng, &sampler, spec));
        }
        sessions.push(SessionWorkload { session: s, txns });
    }
    Workload {
        sessions,
        num_keys: spec.num_keys,
    }
}

fn pick_class(rng: &mut StdRng, spec: &GtWorkloadSpec) -> TxnClass {
    let x: f64 = rng.gen();
    if x < spec.read_only_fraction {
        TxnClass::ReadOnly
    } else if x < spec.read_only_fraction + spec.write_only_fraction {
        TxnClass::WriteOnly
    } else {
        TxnClass::ReadModifyWrite
    }
}

fn generate_gt_txn(rng: &mut StdRng, sampler: &KeySampler, spec: &GtWorkloadSpec) -> TxnTemplate {
    let class = pick_class(rng, spec);
    let ops_per_txn = spec.ops_per_txn.max(1) as usize;
    let mut ops = Vec::with_capacity(ops_per_txn);
    match class {
        TxnClass::ReadOnly => {
            for _ in 0..ops_per_txn {
                ops.push(ReqOp::Read(Key(sampler.sample(rng))));
            }
        }
        TxnClass::WriteOnly => {
            for _ in 0..ops_per_txn {
                ops.push(ReqOp::Write(Key(sampler.sample(rng))));
            }
        }
        TxnClass::ReadModifyWrite => {
            // Pairs of read-then-write on the same key; an odd budget gets a
            // trailing read.
            let pairs = ops_per_txn / 2;
            for _ in 0..pairs {
                let k = Key(sampler.sample(rng));
                ops.push(ReqOp::Read(k));
                ops.push(ReqOp::Write(k));
            }
            if ops_per_txn % 2 == 1 {
                ops.push(ReqOp::Read(Key(sampler.sample(rng))));
            }
        }
    }
    TxnTemplate { ops }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dist::Distribution;

    fn spec() -> GtWorkloadSpec {
        GtWorkloadSpec {
            sessions: 5,
            txns_per_session: 400,
            ops_per_txn: 20,
            num_keys: 100,
            distribution: Distribution::Uniform,
            read_only_fraction: 0.2,
            write_only_fraction: 0.4,
            seed: 1,
        }
    }

    #[test]
    fn sizes_are_as_requested() {
        let w = generate_gt_workload(&spec());
        assert_eq!(w.txn_count(), 2000);
        assert_eq!(w.op_count(), 2000 * 20);
    }

    #[test]
    fn class_mix_roughly_matches_20_40_40() {
        let w = generate_gt_workload(&spec());
        let mut ro = 0;
        let mut wo = 0;
        let mut rmw = 0;
        for t in w.sessions.iter().flat_map(|s| s.txns.iter()) {
            let reads = t.ops.iter().filter(|o| !o.is_write()).count();
            let writes = t.ops.len() - reads;
            if writes == 0 {
                ro += 1;
            } else if reads == 0 {
                wo += 1;
            } else {
                rmw += 1;
            }
        }
        let total = (ro + wo + rmw) as f64;
        assert!((0.15..0.25).contains(&(ro as f64 / total)), "ro = {ro}");
        assert!((0.33..0.47).contains(&(wo as f64 / total)), "wo = {wo}");
        assert!((0.33..0.47).contains(&(rmw as f64 / total)), "rmw = {rmw}");
    }

    #[test]
    fn gt_workloads_are_generally_not_mini() {
        let w = generate_gt_workload(&spec());
        assert!(!w.is_mini());
    }

    #[test]
    fn deterministic_per_seed() {
        assert_eq!(generate_gt_workload(&spec()), generate_gt_workload(&spec()));
    }

    #[test]
    fn odd_op_count_is_handled() {
        let w = generate_gt_workload(&GtWorkloadSpec {
            ops_per_txn: 7,
            ..spec()
        });
        for t in w.sessions.iter().flat_map(|s| s.txns.iter()) {
            assert_eq!(t.len(), 7);
        }
    }
}
