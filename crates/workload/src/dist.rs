//! Object-access distributions controlling workload skew.
//!
//! The MT workload generator of the paper is parameterized by the
//! object-access distribution: `uniform`, `zipfian`, `hotspot` and
//! `exponential` (Section V-A1). [`KeySampler`] pre-computes the cumulative
//! distribution once and then draws keys in `O(log #objects)` per sample.

use rand::Rng;
use serde::{Deserialize, Serialize};

/// The access distributions supported by the workload generators.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub enum Distribution {
    /// Every object is equally likely.
    Uniform,
    /// Zipfian with exponent `theta` (the paper's default skewed workload;
    /// `theta ≈ 1.0` corresponds to classic Zipf).
    Zipf {
        /// Skew exponent; larger means more skewed.
        theta: f64,
    },
    /// A fraction of "hot" objects receives most of the accesses.
    HotSpot {
        /// Fraction of the key space that is hot (e.g. `0.2`).
        hot_fraction: f64,
        /// Probability that an access goes to the hot set (e.g. `0.8`).
        hot_probability: f64,
    },
    /// Exponentially decaying access probability over the key space.
    Exponential {
        /// Decay rate; larger concentrates accesses on low-numbered keys.
        lambda: f64,
    },
}

impl Distribution {
    /// The four distributions evaluated in Figures 7a/8a, with the paper's
    /// conventional parameters.
    pub fn paper_set() -> [Distribution; 4] {
        [
            Distribution::Uniform,
            Distribution::Zipf { theta: 1.0 },
            Distribution::HotSpot {
                hot_fraction: 0.2,
                hot_probability: 0.8,
            },
            Distribution::Exponential { lambda: 10.0 },
        ]
    }

    /// Short label used in reports ("uniform", "zipf", "hotspot", "exp").
    pub fn label(&self) -> &'static str {
        match self {
            Distribution::Uniform => "uniform",
            Distribution::Zipf { .. } => "zipf",
            Distribution::HotSpot { .. } => "hotspot",
            Distribution::Exponential { .. } => "exp",
        }
    }
}

/// Draws keys from `0..num_keys` according to a [`Distribution`].
#[derive(Clone, Debug)]
pub struct KeySampler {
    num_keys: u64,
    kind: SamplerKind,
}

#[derive(Clone, Debug)]
enum SamplerKind {
    Uniform,
    /// Pre-computed cumulative weights (normalized to 1.0).
    Cdf(Vec<f64>),
    HotSpot {
        hot_keys: u64,
        hot_probability: f64,
    },
}

impl KeySampler {
    /// Builds a sampler for `num_keys` objects under `dist`.
    ///
    /// # Panics
    ///
    /// Panics if `num_keys == 0`.
    pub fn new(num_keys: u64, dist: Distribution) -> Self {
        assert!(num_keys > 0, "cannot sample from an empty key space");
        let kind = match dist {
            Distribution::Uniform => SamplerKind::Uniform,
            Distribution::Zipf { theta } => {
                SamplerKind::Cdf(cumulative(num_keys, |i| 1.0 / ((i + 1) as f64).powf(theta)))
            }
            Distribution::Exponential { lambda } => SamplerKind::Cdf(cumulative(num_keys, |i| {
                (-lambda * (i as f64) / (num_keys as f64)).exp()
            })),
            Distribution::HotSpot {
                hot_fraction,
                hot_probability,
            } => {
                let hot_keys = ((num_keys as f64 * hot_fraction).ceil() as u64).clamp(1, num_keys);
                SamplerKind::HotSpot {
                    hot_keys,
                    hot_probability: hot_probability.clamp(0.0, 1.0),
                }
            }
        };
        KeySampler { num_keys, kind }
    }

    /// Number of keys in the sampled space.
    pub fn num_keys(&self) -> u64 {
        self.num_keys
    }

    /// Draws one key.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> u64 {
        match &self.kind {
            SamplerKind::Uniform => rng.gen_range(0..self.num_keys),
            SamplerKind::Cdf(cdf) => {
                let x: f64 = rng.gen();
                match cdf.binary_search_by(|w| w.partial_cmp(&x).unwrap()) {
                    Ok(i) | Err(i) => (i as u64).min(self.num_keys - 1),
                }
            }
            SamplerKind::HotSpot {
                hot_keys,
                hot_probability,
            } => {
                if rng.gen::<f64>() < *hot_probability {
                    rng.gen_range(0..*hot_keys)
                } else if *hot_keys < self.num_keys {
                    rng.gen_range(*hot_keys..self.num_keys)
                } else {
                    rng.gen_range(0..self.num_keys)
                }
            }
        }
    }

    /// Draws `k` *distinct* keys (or all keys if `k >= num_keys`).
    pub fn sample_distinct<R: Rng + ?Sized>(&self, rng: &mut R, k: usize) -> Vec<u64> {
        let k = k.min(self.num_keys as usize);
        let mut out = Vec::with_capacity(k);
        let mut attempts = 0usize;
        while out.len() < k {
            let key = self.sample(rng);
            if !out.contains(&key) {
                out.push(key);
            }
            attempts += 1;
            // With heavy skew, rejection sampling may stall; fall back to a
            // linear probe from the last sample.
            if attempts > 16 * k + 64 {
                let mut key = key;
                while out.contains(&key) {
                    key = (key + 1) % self.num_keys;
                }
                out.push(key);
            }
        }
        out
    }
}

fn cumulative(num_keys: u64, weight: impl Fn(u64) -> f64) -> Vec<f64> {
    let mut cdf = Vec::with_capacity(num_keys as usize);
    let mut total = 0.0;
    for i in 0..num_keys {
        total += weight(i);
        cdf.push(total);
    }
    for w in &mut cdf {
        *w /= total;
    }
    cdf
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn histogram(dist: Distribution, num_keys: u64, samples: usize) -> Vec<usize> {
        let sampler = KeySampler::new(num_keys, dist);
        let mut rng = StdRng::seed_from_u64(7);
        let mut counts = vec![0usize; num_keys as usize];
        for _ in 0..samples {
            counts[sampler.sample(&mut rng) as usize] += 1;
        }
        counts
    }

    #[test]
    fn uniform_covers_the_key_space_evenly() {
        let counts = histogram(Distribution::Uniform, 10, 20_000);
        for &c in &counts {
            assert!(
                (1_600..2_400).contains(&c),
                "uniform bucket out of range: {c}"
            );
        }
    }

    #[test]
    fn zipf_is_heavily_skewed_toward_low_keys() {
        let counts = histogram(Distribution::Zipf { theta: 1.0 }, 100, 20_000);
        assert!(counts[0] > counts[50] * 5);
        assert!(counts[0] > counts[99]);
    }

    #[test]
    fn hotspot_sends_most_accesses_to_the_hot_set() {
        let counts = histogram(
            Distribution::HotSpot {
                hot_fraction: 0.2,
                hot_probability: 0.8,
            },
            10,
            20_000,
        );
        let hot: usize = counts[..2].iter().sum();
        assert!(hot > 14_000, "hot set received only {hot} accesses");
    }

    #[test]
    fn exponential_decays() {
        let counts = histogram(Distribution::Exponential { lambda: 10.0 }, 50, 20_000);
        assert!(counts[0] > counts[25]);
        assert!(counts[0] > counts[49]);
    }

    #[test]
    fn samples_stay_in_range() {
        for dist in Distribution::paper_set() {
            let sampler = KeySampler::new(7, dist);
            let mut rng = StdRng::seed_from_u64(3);
            for _ in 0..1000 {
                assert!(sampler.sample(&mut rng) < 7);
            }
        }
    }

    #[test]
    fn distinct_sampling_returns_distinct_keys() {
        let sampler = KeySampler::new(5, Distribution::Zipf { theta: 2.0 });
        let mut rng = StdRng::seed_from_u64(11);
        for _ in 0..100 {
            let keys = sampler.sample_distinct(&mut rng, 3);
            assert_eq!(keys.len(), 3);
            let mut sorted = keys.clone();
            sorted.sort_unstable();
            sorted.dedup();
            assert_eq!(sorted.len(), 3);
        }
        // Requesting more keys than exist returns the whole space.
        assert_eq!(sampler.sample_distinct(&mut rng, 10).len(), 5);
    }

    #[test]
    fn labels() {
        assert_eq!(Distribution::Uniform.label(), "uniform");
        assert_eq!(Distribution::Zipf { theta: 1.0 }.label(), "zipf");
    }

    #[test]
    #[should_panic(expected = "empty key space")]
    fn zero_keys_panics() {
        KeySampler::new(0, Distribution::Uniform);
    }
}
