//! # mtc-workload
//!
//! Workload generators for the MTC tool-chain (Section V-A of the paper).
//!
//! Two families of *workloads* (transaction templates whose read results are
//! filled in by the database at execution time) are produced:
//!
//! * **MT workloads** ([`mt_gen`]): mini-transactions only — at most two
//!   reads, at most two writes, every write preceded by a read of the same
//!   object;
//! * **GT workloads** ([`gt_gen`]): Cobra-style general transactions — a
//!   configurable number of operations per transaction split into 20%
//!   read-only, 40% write-only and 40% read-modify-write transactions.
//!
//! In addition, [`lwt_gen`] synthesizes complete *lightweight-transaction
//! histories* with a controllable degree of real-time concurrency (used to
//! benchmark the SSER checkers of Figure 9), and [`elle_gen`] produces the
//! list-append and read-write-register workloads used in the Elle
//! effectiveness comparison (Figures 13 and 14).
//!
//! Object-access skew is controlled by the distributions in [`dist`]
//! (uniform, zipfian, hotspot, exponential).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod dist;
pub mod elle_gen;
pub mod gt_gen;
pub mod lwt_gen;
pub mod mt_gen;
pub mod spec;

pub use dist::{Distribution, KeySampler};
pub use elle_gen::{
    generate_elle_workload, ElleOpTemplate, ElleTxnTemplate, ElleWorkload, ElleWorkloadKind,
    ElleWorkloadSpec,
};
pub use gt_gen::generate_gt_workload;
pub use lwt_gen::{generate_lwt_history, LwtHistorySpec};
pub use mt_gen::generate_mt_workload;
pub use spec::{GtWorkloadSpec, MtWorkloadSpec, ReqOp, SessionWorkload, TxnTemplate, Workload};
