//! The mini-transaction workload generator.
//!
//! Generates per-session streams of mini-transaction templates:
//!
//! * a *read-only* MT reads one or two objects;
//! * a *single-key RMW* MT reads one object and writes it back;
//! * a *two-key RMW* MT reads two objects and writes both (the shape needed
//!   to exercise `WRITESKEW`-style interleavings, Figure 5n).
//!
//! Transactions are distributed uniformly across sessions; keys are drawn
//! from the configured access distribution.

use crate::dist::KeySampler;
use crate::spec::{MtWorkloadSpec, ReqOp, SessionWorkload, TxnTemplate, Workload};
use mtc_history::Key;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Generates an MT workload from `spec`.
pub fn generate_mt_workload(spec: &MtWorkloadSpec) -> Workload {
    let mut rng = StdRng::seed_from_u64(spec.seed);
    let sampler = KeySampler::new(spec.num_keys, spec.distribution);
    let mut sessions = Vec::with_capacity(spec.sessions as usize);
    for s in 0..spec.sessions {
        let mut txns = Vec::with_capacity(spec.txns_per_session as usize);
        for _ in 0..spec.txns_per_session {
            txns.push(generate_mini_txn(&mut rng, &sampler, spec));
        }
        sessions.push(SessionWorkload { session: s, txns });
    }
    Workload {
        sessions,
        num_keys: spec.num_keys,
    }
}

fn generate_mini_txn(rng: &mut StdRng, sampler: &KeySampler, spec: &MtWorkloadSpec) -> TxnTemplate {
    let two_keys = rng.gen::<f64>() < spec.two_key_fraction && spec.num_keys >= 2;
    let read_only = rng.gen::<f64>() < spec.read_only_fraction;
    let keys = if two_keys {
        sampler.sample_distinct(rng, 2)
    } else {
        vec![sampler.sample(rng)]
    };
    let mut ops = Vec::with_capacity(4);
    if read_only {
        for &k in &keys {
            ops.push(ReqOp::Read(Key(k)));
        }
    } else if two_keys {
        // Mix the three RMW flavours over two keys: "read both, write both",
        // "read-write, read-write" (chained updates), and "read both, write
        // one" — the write-skew shape of Figure 5n, which is what lets MT
        // workloads expose SI-vs-SER divergences.
        match rng.gen_range(0..3u8) {
            0 => {
                ops.push(ReqOp::Read(Key(keys[0])));
                ops.push(ReqOp::Read(Key(keys[1])));
                ops.push(ReqOp::Write(Key(keys[0])));
                ops.push(ReqOp::Write(Key(keys[1])));
            }
            1 => {
                ops.push(ReqOp::Read(Key(keys[0])));
                ops.push(ReqOp::Write(Key(keys[0])));
                ops.push(ReqOp::Read(Key(keys[1])));
                ops.push(ReqOp::Write(Key(keys[1])));
            }
            _ => {
                ops.push(ReqOp::Read(Key(keys[0])));
                ops.push(ReqOp::Read(Key(keys[1])));
                ops.push(ReqOp::Write(Key(keys[0])));
            }
        }
    } else {
        ops.push(ReqOp::Read(Key(keys[0])));
        ops.push(ReqOp::Write(Key(keys[0])));
    }
    TxnTemplate { ops }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dist::Distribution;

    fn spec() -> MtWorkloadSpec {
        MtWorkloadSpec {
            sessions: 4,
            txns_per_session: 250,
            num_keys: 50,
            distribution: Distribution::Zipf { theta: 1.0 },
            read_only_fraction: 0.2,
            two_key_fraction: 0.5,
            seed: 42,
        }
    }

    #[test]
    fn generates_the_requested_number_of_transactions() {
        let w = generate_mt_workload(&spec());
        assert_eq!(w.sessions.len(), 4);
        assert_eq!(w.txn_count(), 1000);
        for (i, s) in w.sessions.iter().enumerate() {
            assert_eq!(s.session, i as u32);
            assert_eq!(s.txns.len(), 250);
        }
    }

    #[test]
    fn every_template_is_a_mini_transaction() {
        let w = generate_mt_workload(&spec());
        assert!(w.is_mini());
        for t in w.sessions.iter().flat_map(|s| s.txns.iter()) {
            assert!(t.len() <= 4);
            assert!(!t.is_empty());
        }
    }

    #[test]
    fn keys_stay_inside_the_key_space() {
        let w = generate_mt_workload(&spec());
        for t in w.sessions.iter().flat_map(|s| s.txns.iter()) {
            for op in &t.ops {
                assert!(op.key().raw() < 50);
            }
        }
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let a = generate_mt_workload(&spec());
        let b = generate_mt_workload(&spec());
        assert_eq!(a, b);
        let mut other = spec();
        other.seed = 43;
        assert_ne!(a, generate_mt_workload(&other));
    }

    #[test]
    fn read_only_fraction_is_respected_approximately() {
        let w = generate_mt_workload(&MtWorkloadSpec {
            txns_per_session: 2000,
            sessions: 1,
            ..spec()
        });
        let read_only = w.sessions[0]
            .txns
            .iter()
            .filter(|t| t.ops.iter().all(|o| !o.is_write()))
            .count();
        let frac = read_only as f64 / 2000.0;
        assert!((0.12..0.28).contains(&frac), "read-only fraction {frac}");
    }

    #[test]
    fn single_key_workload_works() {
        let w = generate_mt_workload(&MtWorkloadSpec {
            num_keys: 1,
            ..spec()
        });
        assert!(w.is_mini());
        assert!(w
            .sessions
            .iter()
            .flat_map(|s| s.txns.iter())
            .all(|t| t.ops.iter().all(|o| o.key() == Key(0))));
    }
}
