//! Synthetic lightweight-transaction histories (Section V-A2).
//!
//! For databases supporting lightweight transactions the concurrency level of
//! generated histories cannot be controlled reliably through workload
//! parameters alone, so the paper uses a *parametric synthetic history
//! generator* to benchmark the SSER/LIN checkers (Figure 9). The generator
//! produces valid (linearizable) histories of `read&write` operations on a
//! configurable number of objects, where:
//!
//! * `sessions` and `txns_per_session` fix the history size,
//! * `concurrent_fraction` controls how many sessions issue operations whose
//!   intervals overlap (higher ⇒ more concurrency for the checker to
//!   disambiguate),
//! * optionally a violation can be injected to produce non-linearizable
//!   histories for negative testing.

use mtc_history::TimedOp;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Parameters of the synthetic LWT history generator.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct LwtHistorySpec {
    /// Number of client sessions.
    pub sessions: u32,
    /// Operations (lightweight transactions) per session.
    pub txns_per_session: u32,
    /// Number of objects; the operations are spread round-robin over them.
    pub num_keys: u64,
    /// Fraction of sessions whose operations overlap in real time with
    /// operations of other sessions (0.0 = fully sequential, 1.0 = all
    /// sessions concurrent).
    pub concurrent_fraction: f64,
    /// If true, one real-time inversion is injected per object, making the
    /// history non-linearizable.
    pub inject_violation: bool,
    /// RNG seed.
    pub seed: u64,
}

impl Default for LwtHistorySpec {
    fn default() -> Self {
        LwtHistorySpec {
            sessions: 10,
            txns_per_session: 100,
            num_keys: 1,
            concurrent_fraction: 0.5,
            inject_violation: false,
            seed: 0x4c5754, // "LWT"
        }
    }
}

impl LwtHistorySpec {
    /// Total number of operations the spec will generate (including the one
    /// initial insert per object).
    pub fn total_ops(&self) -> usize {
        (self.sessions as usize) * (self.txns_per_session as usize) + self.num_keys as usize
    }
}

/// Generates a lightweight-transaction history according to `spec`.
///
/// The returned operations are in no particular order (as a real collected
/// history would be); each object receives exactly one initial
/// insert-if-not-exists followed by a chain of `read&write` operations with
/// unique values.
pub fn generate_lwt_history(spec: &LwtHistorySpec) -> Vec<TimedOp> {
    let mut rng = StdRng::seed_from_u64(spec.seed);
    let total = (spec.sessions as u64) * (spec.txns_per_session as u64);
    let num_keys = spec.num_keys.max(1);
    let concurrent_sessions = ((spec.sessions as f64) * spec.concurrent_fraction).round() as u32;

    let mut ops = Vec::with_capacity(total as usize + num_keys as usize);
    // Per-key chains: the i-th operation on key k carries value i (value 0 is
    // installed by the insert).
    let mut per_key_counter = vec![0u64; num_keys as usize];

    // The i-th operation overall happens in time slot i (slot width 10).
    // Sequential sessions get narrow intervals fully inside their slot;
    // concurrent sessions get intervals stretched to overlap neighbours but
    // never so far as to start after a successor finishes.
    for k in 0..num_keys {
        ops.push(TimedOp::insert(0, 1, k, 0u64));
    }
    for i in 0..total {
        let session = (i % spec.sessions as u64) as u32;
        let key = i % num_keys;
        let slot = 10 * (i / num_keys) + 10;
        let concurrent = session < concurrent_sessions;
        let (start, finish) = if concurrent {
            // Long overlapping interval: starts during a previous slot and
            // finishes during a later one.
            let back = rng.gen_range(1..=8);
            let ahead = rng.gen_range(5..=25);
            (slot.saturating_sub(back), slot + ahead)
        } else {
            let jitter = rng.gen_range(0..3);
            (slot + jitter, slot + jitter + 2)
        };
        let counter = &mut per_key_counter[key as usize];
        let expected = *counter;
        let new = *counter + 1;
        *counter = new;
        ops.push(TimedOp::read_write(start, finish, key, expected, new));
    }

    if spec.inject_violation {
        inject_real_time_violation(&mut ops, num_keys);
    }

    // Shuffle to mimic the arbitrary order of a collected multi-client log.
    for i in (1..ops.len()).rev() {
        let j = rng.gen_range(0..=i);
        ops.swap(i, j);
    }
    ops
}

/// Moves the *first* `read&write` of each per-key chain to start only after
/// every other operation has finished (the shape of Figure 4b): it still
/// reads the initial value although later chain elements already completed —
/// a real-time violation.
fn inject_real_time_violation(ops: &mut [TimedOp], num_keys: u64) {
    let max_finish = ops.iter().map(|o| o.finish).max().unwrap_or(0);
    for k in 0..num_keys {
        if let Some(first) = ops
            .iter_mut()
            .filter(|o| o.key.raw() == k && o.read_value().is_some())
            .min_by_key(|o| o.written_value().map(|v| v.raw()).unwrap_or(u64::MAX))
        {
            first.start = max_finish + 100;
            first.finish = max_finish + 110;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mtc_core::check_linearizability;

    #[test]
    fn generated_histories_are_linearizable() {
        for concurrent in [0.0, 0.5, 1.0] {
            let spec = LwtHistorySpec {
                sessions: 8,
                txns_per_session: 50,
                num_keys: 4,
                concurrent_fraction: concurrent,
                inject_violation: false,
                seed: 9,
            };
            let ops = generate_lwt_history(&spec);
            assert_eq!(ops.len(), spec.total_ops());
            let verdict = check_linearizability(&ops).unwrap();
            assert!(
                verdict.is_satisfied(),
                "expected linearizable history at concurrency {concurrent}: {verdict:?}"
            );
        }
    }

    #[test]
    fn injected_violations_are_detected() {
        let spec = LwtHistorySpec {
            inject_violation: true,
            sessions: 4,
            txns_per_session: 20,
            num_keys: 2,
            concurrent_fraction: 0.5,
            seed: 10,
        };
        let ops = generate_lwt_history(&spec);
        let verdict = check_linearizability(&ops).unwrap();
        assert!(verdict.is_violated());
    }

    #[test]
    fn deterministic_per_seed() {
        let spec = LwtHistorySpec::default();
        assert_eq!(generate_lwt_history(&spec), generate_lwt_history(&spec));
    }

    #[test]
    fn one_insert_per_key() {
        let spec = LwtHistorySpec {
            num_keys: 5,
            ..LwtHistorySpec::default()
        };
        let ops = generate_lwt_history(&spec);
        for k in 0..5u64 {
            let inserts = ops
                .iter()
                .filter(|o| {
                    o.key.raw() == k && o.written_value().is_some() && o.read_value().is_none()
                })
                .count();
            assert_eq!(inserts, 1, "key {k} has {inserts} inserts");
        }
    }
}
