//! Workload specifications and transaction templates.
//!
//! A *workload* is a set of per-session transaction templates. Templates
//! contain the operation shapes (which keys to read, which to write); the
//! concrete values read are determined only when the workload is executed
//! against a database, and written values are assigned by the executing
//! client from its unique-value allocator.

use crate::dist::Distribution;
use mtc_history::Key;
use serde::{Deserialize, Serialize};

/// One operation of a transaction template.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum ReqOp {
    /// Read the current value of the key.
    Read(Key),
    /// Write a fresh unique value to the key.
    Write(Key),
}

impl ReqOp {
    /// The key touched by the operation.
    pub fn key(&self) -> Key {
        match *self {
            ReqOp::Read(k) | ReqOp::Write(k) => k,
        }
    }

    /// True for [`ReqOp::Write`].
    pub fn is_write(&self) -> bool {
        matches!(self, ReqOp::Write(_))
    }
}

/// A transaction template: operations in program order.
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct TxnTemplate {
    /// The operations to issue.
    pub ops: Vec<ReqOp>,
}

impl TxnTemplate {
    /// Number of operations.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// True iff the template has no operations.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// True iff the template follows the mini-transaction shape:
    /// 1–2 reads, ≤ 2 writes, every write preceded by a read of its key.
    pub fn is_mini(&self) -> bool {
        let reads = self.ops.iter().filter(|o| !o.is_write()).count();
        let writes = self.ops.iter().filter(|o| o.is_write()).count();
        if reads == 0 || reads > 2 || writes > 2 {
            return false;
        }
        for (i, op) in self.ops.iter().enumerate() {
            if op.is_write()
                && !self.ops[..i]
                    .iter()
                    .any(|o| !o.is_write() && o.key() == op.key())
            {
                return false;
            }
        }
        true
    }
}

/// The templates issued by a single session.
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct SessionWorkload {
    /// Session identifier (0-based).
    pub session: u32,
    /// Transactions in issue order.
    pub txns: Vec<TxnTemplate>,
}

/// A complete workload: per-session templates plus the key-space size.
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Workload {
    /// Per-session transaction templates.
    pub sessions: Vec<SessionWorkload>,
    /// Number of objects the workload addresses (keys `0..num_keys`).
    pub num_keys: u64,
}

impl Workload {
    /// Total number of transaction templates.
    pub fn txn_count(&self) -> usize {
        self.sessions.iter().map(|s| s.txns.len()).sum()
    }

    /// Total number of operations.
    pub fn op_count(&self) -> usize {
        self.sessions
            .iter()
            .flat_map(|s| s.txns.iter())
            .map(TxnTemplate::len)
            .sum()
    }

    /// True iff every template is a mini-transaction.
    pub fn is_mini(&self) -> bool {
        self.sessions
            .iter()
            .flat_map(|s| s.txns.iter())
            .all(TxnTemplate::is_mini)
    }
}

/// Parameters of the MT workload generator (Section V-A1).
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct MtWorkloadSpec {
    /// Number of client sessions.
    pub sessions: u32,
    /// Transactions per session.
    pub txns_per_session: u32,
    /// Number of objects.
    pub num_keys: u64,
    /// Object-access distribution.
    pub distribution: Distribution,
    /// Fraction of read-only mini-transactions (the rest are RMW-shaped).
    pub read_only_fraction: f64,
    /// Fraction of two-key mini-transactions (the rest touch one key).
    pub two_key_fraction: f64,
    /// RNG seed, for reproducible workloads.
    pub seed: u64,
}

impl Default for MtWorkloadSpec {
    fn default() -> Self {
        MtWorkloadSpec {
            sessions: 10,
            txns_per_session: 100,
            num_keys: 1000,
            distribution: Distribution::Uniform,
            read_only_fraction: 0.2,
            two_key_fraction: 0.5,
            seed: 0x4d5443, // "MTC"
        }
    }
}

/// Parameters of the Cobra-style GT workload generator (Section V-A1).
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct GtWorkloadSpec {
    /// Number of client sessions.
    pub sessions: u32,
    /// Transactions per session.
    pub txns_per_session: u32,
    /// Operations per transaction.
    pub ops_per_txn: u32,
    /// Number of objects.
    pub num_keys: u64,
    /// Object-access distribution.
    pub distribution: Distribution,
    /// Fraction of read-only transactions (paper: 0.2).
    pub read_only_fraction: f64,
    /// Fraction of write-only transactions (paper: 0.4). The remainder are
    /// RMW transactions.
    pub write_only_fraction: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for GtWorkloadSpec {
    fn default() -> Self {
        GtWorkloadSpec {
            sessions: 10,
            txns_per_session: 100,
            ops_per_txn: 20,
            num_keys: 1000,
            distribution: Distribution::Uniform,
            read_only_fraction: 0.2,
            write_only_fraction: 0.4,
            seed: 0x474f54,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn template_mini_detection() {
        let mini = TxnTemplate {
            ops: vec![ReqOp::Read(Key(0)), ReqOp::Write(Key(0))],
        };
        assert!(mini.is_mini());
        let blind = TxnTemplate {
            ops: vec![ReqOp::Write(Key(0))],
        };
        assert!(!blind.is_mini());
        let too_long = TxnTemplate {
            ops: vec![
                ReqOp::Read(Key(0)),
                ReqOp::Read(Key(1)),
                ReqOp::Read(Key(2)),
            ],
        };
        assert!(!too_long.is_mini());
        assert_eq!(mini.len(), 2);
        assert!(!mini.is_empty());
    }

    #[test]
    fn workload_counting() {
        let w = Workload {
            sessions: vec![
                SessionWorkload {
                    session: 0,
                    txns: vec![TxnTemplate {
                        ops: vec![ReqOp::Read(Key(0))],
                    }],
                },
                SessionWorkload {
                    session: 1,
                    txns: vec![
                        TxnTemplate {
                            ops: vec![ReqOp::Read(Key(1)), ReqOp::Write(Key(1))],
                        },
                        TxnTemplate {
                            ops: vec![ReqOp::Read(Key(2))],
                        },
                    ],
                },
            ],
            num_keys: 3,
        };
        assert_eq!(w.txn_count(), 3);
        assert_eq!(w.op_count(), 4);
        assert!(w.is_mini());
    }
}
