//! Observability must never change a verdict: the exact same stream fed
//! through the sequential and sharded streaming checkers with metric
//! recording *disabled* and then *enabled* must produce bit-identical
//! results — same verdict payload, same `first_violation_at`. The
//! instrumentation only ever times and counts; this suite is the proof
//! that it stays off the decision path.

use mtc_core::{GcPolicy, IncrementalChecker, IsolationLevel, ShardedIncrementalChecker};
use mtc_history::{History, HistoryBuilder, Op, Value};

/// A serial read-modify-write history over `keys` keys: clean at SER and
/// SI by construction.
fn serial_history(keys: u64, txns: usize, sessions: u32) -> History {
    let mut state = vec![0u64; keys as usize];
    let mut builder = HistoryBuilder::new().with_init(keys);
    for i in 0..txns {
        let next = i as u64 + 1;
        let k = ((i as u64).wrapping_mul(7).wrapping_add(3) % keys) as usize;
        let ops = vec![Op::read(k as u64, state[k]), Op::write(k as u64, next)];
        state[k] = next;
        builder.committed(i as u32 % sessions, ops);
    }
    builder.build()
}

/// Rebuilds `history` with the first read of the `target`-th user
/// transaction made stale — a violation for every RMW stream.
fn corrupted(history: &History, target: usize) -> History {
    let mut builder = HistoryBuilder::new().with_init(history.keys().len() as u64);
    let user: Vec<_> = history
        .txns()
        .iter()
        .filter(|t| Some(t.id) != history.init_txn())
        .collect();
    for (i, t) in user.iter().enumerate() {
        let mut ops = t.ops.clone();
        if i == target % user.len().max(1) {
            if let Some(Op::Read { value, .. }) = ops.first_mut() {
                *value = Value(value.raw().wrapping_add(1_000_000));
            }
        }
        builder.committed(t.session.0, ops);
    }
    builder.build()
}

/// One full run of the sequential checker (GC'd) over `history`, returning
/// everything a caller could observe: the debug-rendered final verdict and
/// the latched first-violation index.
fn run_sequential(
    level: IsolationLevel,
    history: &History,
) -> (String, Option<mtc_history::TxnId>) {
    let mut checker = IncrementalChecker::new(level)
        .with_init_keys(0..history.keys().len() as u64)
        .with_gc(GcPolicy::clamped(16, 3));
    for t in history.txns() {
        if Some(t.id) == history.init_txn() {
            continue;
        }
        let _ = checker.push(t.clone());
    }
    let first = checker.first_violation_at();
    (format!("{:?}", checker.finish()), first)
}

/// The same, through the sharded checker fed in batches.
fn run_sharded(level: IsolationLevel, history: &History) -> (String, Option<mtc_history::TxnId>) {
    let mut checker = ShardedIncrementalChecker::new(level, 4)
        .with_init_keys(0..history.keys().len() as u64)
        .with_gc(GcPolicy::clamped(16, 3));
    let txns: Vec<_> = history
        .txns()
        .iter()
        .filter(|t| Some(t.id) != history.init_txn())
        .cloned()
        .collect();
    for batch in txns.chunks(7) {
        let _ = checker.push_batch(batch.to_vec());
    }
    let first = checker.first_violation_at();
    (format!("{:?}", checker.finish()), first)
}

fn assert_identical_on_off(level: IsolationLevel, history: &History) {
    let (seq_off, sharded_off) = {
        let _off = mtc_obs::test_support::with_enabled(false);
        (run_sequential(level, history), run_sharded(level, history))
    };
    let (seq_on, sharded_on) = {
        let _on = mtc_obs::test_support::with_enabled(true);
        (run_sequential(level, history), run_sharded(level, history))
    };
    assert_eq!(
        seq_off, seq_on,
        "sequential verdict differs with metrics on at {level}"
    );
    assert_eq!(
        sharded_off, sharded_on,
        "sharded verdict differs with metrics on at {level}"
    );
}

#[test]
fn clean_streams_identical_with_metrics_on_and_off() {
    for &(keys, txns, sessions) in &[(4u64, 60usize, 2u32), (8, 200, 4), (3, 33, 1)] {
        let history = serial_history(keys, txns, sessions);
        for level in [
            IsolationLevel::Serializability,
            IsolationLevel::SnapshotIsolation,
        ] {
            assert_identical_on_off(level, &history);
        }
    }
}

#[test]
fn violating_streams_identical_with_metrics_on_and_off() {
    for &(keys, txns, target) in &[(4u64, 60usize, 10usize), (8, 200, 150), (3, 33, 0)] {
        let history = corrupted(&serial_history(keys, txns, 2), target);
        for level in [
            IsolationLevel::Serializability,
            IsolationLevel::SnapshotIsolation,
        ] {
            assert_identical_on_off(level, &history);
        }
    }
}
