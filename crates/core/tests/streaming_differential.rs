//! Property-based differential testing of the streaming engine: for random
//! mini-transaction histories — valid serial ones and corrupted ones — the
//! [`IncrementalChecker`] fed transaction-by-transaction and the
//! [`ShardedIncrementalChecker`] fed in batches must agree with the batch
//! `CHECKSER`/`CHECKSI` on accept/reject, and with each other exactly.

use mtc_core::{
    check_ser, check_si, check_streaming, check_streaming_sharded, IncrementalChecker,
    IsolationLevel, StreamStatus,
};
use mtc_history::{History, HistoryBuilder, Op, Value};
use proptest::prelude::*;

/// Mini-transaction shapes, as in the top-level differential suite.
#[derive(Debug, Clone, Copy)]
enum Shape {
    ReadOne,
    ReadTwo,
    Rmw,
    DoubleRmw,
    WriteSkewHalf,
}

fn shape_strategy() -> impl Strategy<Value = Shape> {
    prop_oneof![
        Just(Shape::ReadOne),
        Just(Shape::ReadTwo),
        Just(Shape::Rmw),
        Just(Shape::DoubleRmw),
        Just(Shape::WriteSkewHalf),
    ]
}

/// Builds a valid serial MT history (satisfies SER and SI by construction).
fn serial_history(shapes: &[(Shape, u64, u64)], keys: u64, sessions: u32) -> History {
    let keys = keys.max(2);
    let mut state = vec![0u64; keys as usize];
    let mut next_value = 1u64;
    let mut builder = HistoryBuilder::new().with_init(keys);
    for (i, &(shape, k1, k2)) in shapes.iter().enumerate() {
        let a = (k1 % keys) as usize;
        let b = (k2 % keys) as usize;
        let b = if a == b { (a + 1) % keys as usize } else { b };
        let session = (i as u32) % sessions;
        let mut ops = Vec::new();
        match shape {
            Shape::ReadOne => ops.push(Op::read(a as u64, state[a])),
            Shape::ReadTwo => {
                ops.push(Op::read(a as u64, state[a]));
                ops.push(Op::read(b as u64, state[b]));
            }
            Shape::Rmw => {
                ops.push(Op::read(a as u64, state[a]));
                ops.push(Op::write(a as u64, next_value));
                state[a] = next_value;
                next_value += 1;
            }
            Shape::DoubleRmw => {
                ops.push(Op::read(a as u64, state[a]));
                ops.push(Op::write(a as u64, next_value));
                state[a] = next_value;
                next_value += 1;
                ops.push(Op::read(b as u64, state[b]));
                ops.push(Op::write(b as u64, next_value));
                state[b] = next_value;
                next_value += 1;
            }
            Shape::WriteSkewHalf => {
                ops.push(Op::read(a as u64, state[a]));
                ops.push(Op::read(b as u64, state[b]));
                ops.push(Op::write(a as u64, next_value));
                state[a] = next_value;
                next_value += 1;
            }
        }
        builder.committed(session, ops);
    }
    builder.build()
}

/// Corrupts one read to return a stale value (may or may not introduce a
/// violation — stale pure reads can still be serializable).
fn corrupt(history: &History, txn_pick: usize, stale: u64) -> History {
    let mut builder = HistoryBuilder::new().with_init(history.keys().len() as u64);
    let user_txns: Vec<_> = history
        .txns()
        .iter()
        .filter(|t| Some(t.id) != history.init_txn())
        .collect();
    let target = txn_pick % user_txns.len().max(1);
    for (i, t) in user_txns.iter().enumerate() {
        let mut ops = t.ops.clone();
        if i == target {
            if let Some(Op::Read { value, .. }) = ops.first_mut() {
                *value = Value(stale % value.raw().max(1));
            }
        }
        builder.committed(t.session.0, ops);
    }
    builder.build()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Valid serial histories are accepted online, and the sharded checker
    /// produces the exact same verdict as the sequential one.
    #[test]
    fn valid_histories_accepted_by_all_streaming_variants(
        shapes in prop::collection::vec((shape_strategy(), 0u64..6, 0u64..6), 1..24),
        keys in 2u64..6,
        sessions in 1u32..4,
    ) {
        let history = serial_history(&shapes, keys, sessions);
        for level in [IsolationLevel::Serializability, IsolationLevel::SnapshotIsolation] {
            let streaming = check_streaming(level, &history).unwrap();
            prop_assert!(streaming.is_satisfied(), "{level}: {streaming:?}");
            let sharded = check_streaming_sharded(level, &history, 3, 7).unwrap();
            prop_assert_eq!(streaming, sharded);
        }
    }

    /// On corrupted histories, the streaming checkers agree with the batch
    /// verdicts on accept/reject, and sequential == sharded exactly.
    #[test]
    fn streaming_agrees_with_batch_on_corrupted_histories(
        shapes in prop::collection::vec((shape_strategy(), 0u64..4, 0u64..4), 2..16),
        pick in 0usize..16,
        stale in 0u64..3,
        shards in 1usize..5,
        batch in 1usize..9,
    ) {
        let valid = serial_history(&shapes, 3, 2);
        let corrupted = corrupt(&valid, pick, stale);
        for level in [IsolationLevel::Serializability, IsolationLevel::SnapshotIsolation] {
            let batch_verdict = match level {
                IsolationLevel::Serializability => check_ser(&corrupted).unwrap(),
                _ => check_si(&corrupted).unwrap(),
            };
            let streaming = check_streaming(level, &corrupted).unwrap();
            prop_assert_eq!(
                batch_verdict.is_violated(),
                streaming.is_violated(),
                "{} accept/reject mismatch: batch={:?} streaming={:?}",
                level, batch_verdict, streaming
            );
            let sharded = check_streaming_sharded(level, &corrupted, shards, batch).unwrap();
            prop_assert_eq!(&streaming, &sharded, "sequential and sharded diverge at {}", level);
        }
    }

    /// Early exit: when a violating prefix exists, the checker latches no
    /// later than the batch verdict over that same prefix would flag it, and
    /// the latched status never reverts while the tail streams in.
    #[test]
    fn violations_latch_and_stay_latched(
        shapes in prop::collection::vec((shape_strategy(), 0u64..4, 0u64..4), 4..16),
        pick in 0usize..8,
        tail in 1usize..12,
    ) {
        let valid = serial_history(&shapes, 3, 2);
        let corrupted = corrupt(&valid, pick, 0);
        let mut checker = IncrementalChecker::new_ser()
            .with_init_keys(corrupted.keys());
        let mut latched_at: Option<usize> = None;
        for txn in corrupted.txns() {
            if Some(txn.id) == corrupted.init_txn() {
                continue;
            }
            if let Ok(StreamStatus::Violated) = checker.push(txn.clone()) {
                latched_at.get_or_insert(txn.id.index());
            }
        }
        // Extend with a tail of serial updates on a fresh key (untouched by
        // the corrupted prefix); the verdict must not change.
        let was_violated = checker.is_violated();
        let first = checker.first_violation_at();
        let fresh_key = 9_999u64;
        let mut last = Value(0);
        for i in 0..tail {
            let next = Value(1_000_000 + i as u64);
            let _ = checker.push_committed(
                0,
                vec![Op::read(fresh_key, last), Op::write(fresh_key, next)],
            );
            last = next;
        }
        prop_assert_eq!(checker.is_violated(), was_violated);
        prop_assert_eq!(checker.first_violation_at(), first);
        if let (Some(pos), Some(at)) = (latched_at, first) {
            prop_assert_eq!(pos, at.index());
        }
    }
}
