//! Property-based differential testing of the streaming engine: for random
//! mini-transaction histories — valid serial ones and corrupted ones — the
//! [`IncrementalChecker`] fed transaction-by-transaction and the
//! [`ShardedIncrementalChecker`] fed in batches must agree with the batch
//! `CHECKSER`/`CHECKSI` on accept/reject, and with each other exactly.
//!
//! The SSER section additionally generates *timed* histories — overlapping
//! commit intervals, shuffled key spaces (which shuffle the shard ownership
//! and therefore the per-shard delivery order) and clock-skewed instants —
//! and asserts that the online time-chain checker agrees with both batch
//! `CHECKSSER` flavours on accept/reject, and that sequential and sharded
//! streaming verdicts are identical bit for bit.

use mtc_core::{
    check_ser, check_si, check_sser, check_sser_naive, check_streaming, check_streaming_sharded,
    tune, CheckerSnapshot, GcPolicy, IncrementalChecker, IncrementalSserChecker, IsolationLevel,
    ShardedIncrementalChecker, StreamStatus,
};
use mtc_history::{History, HistoryBuilder, Op, Transaction, TxnId, Value};
use proptest::prelude::*;

/// Mini-transaction shapes, as in the top-level differential suite.
#[derive(Debug, Clone, Copy)]
enum Shape {
    ReadOne,
    ReadTwo,
    Rmw,
    DoubleRmw,
    WriteSkewHalf,
}

fn shape_strategy() -> impl Strategy<Value = Shape> {
    prop_oneof![
        Just(Shape::ReadOne),
        Just(Shape::ReadTwo),
        Just(Shape::Rmw),
        Just(Shape::DoubleRmw),
        Just(Shape::WriteSkewHalf),
    ]
}

/// Builds a valid serial MT history (satisfies SER and SI by construction).
fn serial_history(shapes: &[(Shape, u64, u64)], keys: u64, sessions: u32) -> History {
    let keys = keys.max(2);
    let mut state = vec![0u64; keys as usize];
    let mut next_value = 1u64;
    let mut builder = HistoryBuilder::new().with_init(keys);
    for (i, &(shape, k1, k2)) in shapes.iter().enumerate() {
        let a = (k1 % keys) as usize;
        let b = (k2 % keys) as usize;
        let b = if a == b { (a + 1) % keys as usize } else { b };
        let session = (i as u32) % sessions;
        let mut ops = Vec::new();
        match shape {
            Shape::ReadOne => ops.push(Op::read(a as u64, state[a])),
            Shape::ReadTwo => {
                ops.push(Op::read(a as u64, state[a]));
                ops.push(Op::read(b as u64, state[b]));
            }
            Shape::Rmw => {
                ops.push(Op::read(a as u64, state[a]));
                ops.push(Op::write(a as u64, next_value));
                state[a] = next_value;
                next_value += 1;
            }
            Shape::DoubleRmw => {
                ops.push(Op::read(a as u64, state[a]));
                ops.push(Op::write(a as u64, next_value));
                state[a] = next_value;
                next_value += 1;
                ops.push(Op::read(b as u64, state[b]));
                ops.push(Op::write(b as u64, next_value));
                state[b] = next_value;
                next_value += 1;
            }
            Shape::WriteSkewHalf => {
                ops.push(Op::read(a as u64, state[a]));
                ops.push(Op::read(b as u64, state[b]));
                ops.push(Op::write(a as u64, next_value));
                state[a] = next_value;
                next_value += 1;
            }
        }
        builder.committed(session, ops);
    }
    builder.build()
}

/// Corrupts one read to return a stale value (may or may not introduce a
/// violation — stale pure reads can still be serializable).
fn corrupt(history: &History, txn_pick: usize, stale: u64) -> History {
    let mut builder = HistoryBuilder::new().with_init(history.keys().len() as u64);
    let user_txns: Vec<_> = history
        .txns()
        .iter()
        .filter(|t| Some(t.id) != history.init_txn())
        .collect();
    let target = txn_pick % user_txns.len().max(1);
    for (i, t) in user_txns.iter().enumerate() {
        let mut ops = t.ops.clone();
        if i == target {
            if let Some(Op::Read { value, .. }) = ops.first_mut() {
                *value = Value(stale % value.raw().max(1));
            }
        }
        builder.committed(t.session.0, ops);
    }
    builder.build()
}

/// Like [`serial_history`], but every transaction carries a commit interval:
/// begins are non-decreasing (`gap` apart) and each transaction stays open
/// for `duration` ticks, so large durations produce intervals overlapping
/// many successors — which must *not* constrain the real-time order. The key
/// space is shifted by `key_offset`, which shuffles `hash(key) mod shards`
/// ownership and therefore the per-shard delivery order of the sharded
/// checker.
fn timed_serial_history(
    shapes: &[(Shape, u64, u64)],
    keys: u64,
    sessions: u32,
    key_offset: u64,
    intervals: &[(u64, u64)],
) -> History {
    let keys = keys.max(2);
    let mut state = vec![0u64; keys as usize];
    let mut next_value = 1u64;
    let mut builder = HistoryBuilder::new().with_init_keys((0..keys).map(|k| k + key_offset));
    let mut begin = 1u64;
    for (i, &(shape, k1, k2)) in shapes.iter().enumerate() {
        let a = (k1 % keys) as usize;
        let b = (k2 % keys) as usize;
        let b = if a == b { (a + 1) % keys as usize } else { b };
        let session = (i as u32) % sessions;
        let (ka, kb) = (a as u64 + key_offset, b as u64 + key_offset);
        let mut ops = Vec::new();
        match shape {
            Shape::ReadOne => ops.push(Op::read(ka, state[a])),
            Shape::ReadTwo => {
                ops.push(Op::read(ka, state[a]));
                ops.push(Op::read(kb, state[b]));
            }
            Shape::Rmw => {
                ops.push(Op::read(ka, state[a]));
                ops.push(Op::write(ka, next_value));
                state[a] = next_value;
                next_value += 1;
            }
            Shape::DoubleRmw => {
                ops.push(Op::read(ka, state[a]));
                ops.push(Op::write(ka, next_value));
                state[a] = next_value;
                next_value += 1;
                ops.push(Op::read(kb, state[b]));
                ops.push(Op::write(kb, next_value));
                state[b] = next_value;
                next_value += 1;
            }
            Shape::WriteSkewHalf => {
                ops.push(Op::read(ka, state[a]));
                ops.push(Op::read(kb, state[b]));
                ops.push(Op::write(ka, next_value));
                state[a] = next_value;
                next_value += 1;
            }
        }
        let (gap, duration) = intervals[i % intervals.len().max(1)];
        begin += gap;
        builder.committed_timed(session, ops, begin, begin + duration);
    }
    builder.build()
}

/// Rebuilds a timed history, pulling the *reported* end of the `pick`-th
/// user transaction `delta` ticks into the past (clock skew; saturating, so
/// a large delta yields a self-inconsistent interval), optionally replacing
/// the first read of the `corrupt`-th transaction with a stale value, and
/// optionally stripping one instant of the `strip`-th transaction (a
/// partially timed record — only its remaining side constrains real time).
fn skewed(
    history: &History,
    pick: usize,
    delta: u64,
    corrupt: Option<(usize, u64)>,
    strip: Option<(usize, bool)>,
) -> History {
    let init_keys = history.init_txn().map(|id| history.txn(id).write_set());
    let mut builder = match &init_keys {
        Some(keys) => HistoryBuilder::new().with_init_keys(keys.iter().copied()),
        None => HistoryBuilder::new(),
    };
    let user: Vec<_> = history
        .txns()
        .iter()
        .filter(|t| Some(t.id) != history.init_txn())
        .collect();
    let target = pick % user.len().max(1);
    for (i, t) in user.iter().enumerate() {
        let mut ops = t.ops.clone();
        if let Some((cp, stale)) = corrupt {
            if i == cp % user.len().max(1) {
                if let Some(Op::Read { value, .. }) = ops.first_mut() {
                    *value = Value(stale % value.raw().max(1));
                }
            }
        }
        let begin = t.begin.unwrap_or(0);
        let mut end = t.end.unwrap_or(begin);
        if i == target {
            end = end.saturating_sub(delta);
        }
        let (mut begin, mut end) = (Some(begin), Some(end));
        if let Some((sp, strip_begin)) = strip {
            if i == sp % user.len().max(1) {
                if strip_begin {
                    begin = None;
                } else {
                    end = None;
                }
            }
        }
        builder.push_cloned(Transaction {
            id: TxnId(0), // renumbered by the builder
            session: t.session,
            ops,
            status: t.status,
            begin,
            end,
        });
    }
    builder.build()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Valid serial histories are accepted online, and the sharded checker
    /// produces the exact same verdict as the sequential one.
    #[test]
    fn valid_histories_accepted_by_all_streaming_variants(
        shapes in prop::collection::vec((shape_strategy(), 0u64..6, 0u64..6), 1..24),
        keys in 2u64..6,
        sessions in 1u32..4,
    ) {
        let history = serial_history(&shapes, keys, sessions);
        for level in [IsolationLevel::Serializability, IsolationLevel::SnapshotIsolation] {
            let streaming = check_streaming(level, &history).unwrap();
            prop_assert!(streaming.is_satisfied(), "{level}: {streaming:?}");
            let sharded = check_streaming_sharded(level, &history, 3, 7).unwrap();
            prop_assert_eq!(streaming, sharded);
        }
    }

    /// On corrupted histories, the streaming checkers agree with the batch
    /// verdicts on accept/reject, and sequential == sharded exactly.
    #[test]
    fn streaming_agrees_with_batch_on_corrupted_histories(
        shapes in prop::collection::vec((shape_strategy(), 0u64..4, 0u64..4), 2..16),
        pick in 0usize..16,
        stale in 0u64..3,
        shards in 1usize..5,
        batch in 1usize..9,
    ) {
        let valid = serial_history(&shapes, 3, 2);
        let corrupted = corrupt(&valid, pick, stale);
        for level in [IsolationLevel::Serializability, IsolationLevel::SnapshotIsolation] {
            let batch_verdict = match level {
                IsolationLevel::Serializability => check_ser(&corrupted).unwrap(),
                _ => check_si(&corrupted).unwrap(),
            };
            let streaming = check_streaming(level, &corrupted).unwrap();
            prop_assert_eq!(
                batch_verdict.is_violated(),
                streaming.is_violated(),
                "{} accept/reject mismatch: batch={:?} streaming={:?}",
                level, batch_verdict, streaming
            );
            let sharded = check_streaming_sharded(level, &corrupted, shards, batch).unwrap();
            prop_assert_eq!(&streaming, &sharded, "sequential and sharded diverge at {}", level);
        }
    }

    /// The batched merge path accumulates a whole hand-off batch of edges
    /// before they reach the topological order. Batches far larger than the
    /// history (one flush for everything) and the autotuned geometry must
    /// still produce verdicts identical to the sequential checker — at every
    /// isolation level (untimed SSER degrades to SER, exercising the
    /// augmented order's deferred path too).
    #[test]
    fn large_batches_and_tuned_geometry_match_sequential(
        shapes in prop::collection::vec((shape_strategy(), 0u64..4, 0u64..4), 8..32),
        pick in 0usize..32,
        stale in 0u64..3,
    ) {
        let valid = serial_history(&shapes, 4, 3);
        let corrupted = corrupt(&valid, pick, stale);
        for level in [
            IsolationLevel::Serializability,
            IsolationLevel::SnapshotIsolation,
            IsolationLevel::StrictSerializability,
        ] {
            let sequential = check_streaming(level, &corrupted).unwrap();
            for (shards, batch) in [(2usize, 1024usize), (4, 4096), (3, 64)] {
                let sharded =
                    check_streaming_sharded(level, &corrupted, shards, batch).unwrap();
                prop_assert_eq!(
                    &sequential, &sharded,
                    "{} mismatch with {} shards, batch {}", level, shards, batch
                );
            }
            let tuning = tune();
            let mut tuned = ShardedIncrementalChecker::new_tuned(level);
            let _ = tuned.push_history(&corrupted, tuning.batch);
            prop_assert_eq!(&sequential, &tuned.finish().unwrap(), "autotuned {}", level);
        }
    }

    /// Intra-shard cycles: a single-key history funnels every dependency
    /// edge into one shard, so the worker's local order latches first and
    /// hints the merge thread. The verdict, its certificate and the latching
    /// transaction must be exactly the sequential ones.
    #[test]
    fn single_key_cycles_latch_identically_under_worker_hints(
        n in 4u64..24,
        pick in 1usize..24,
        shards in 2usize..5,
    ) {
        let mut b = HistoryBuilder::new().with_init(1);
        let mut last = 0u64;
        for i in 0..n {
            // One stale read mid-chain corrupts the single-key RMW chain.
            let read = if i as usize == pick % (n as usize) && i > 0 { 0 } else { last };
            b.committed((i % 3) as u32, vec![Op::read(0u64, read), Op::write(0u64, i + 1)]);
            last = i + 1;
        }
        let h = b.build();
        let mut sequential = IncrementalChecker::new_ser();
        let _ = sequential.push_history(&h);
        let mut sharded = ShardedIncrementalChecker::new(IsolationLevel::Serializability, shards);
        let _ = sharded.push_history(&h, 1024);
        prop_assert_eq!(sequential.first_violation_at(), sharded.first_violation_at());
        prop_assert_eq!(sequential.finish().unwrap(), sharded.finish().unwrap());
    }

    /// SI analogue of the worker-hint test: a single-key lost update funnels
    /// the WW and RW edges into one shard, whose local composed fragment
    /// `(WR ∪ WW) ; RW?` closes the cycle and hints the merge thread. The
    /// verdict, certificate and latching transaction must be exactly the
    /// sequential checker's.
    #[test]
    fn single_key_si_composed_cycles_latch_identically_under_worker_hints(
        n in 3u64..16,
        pick in 1usize..16,
        shards in 2usize..5,
    ) {
        let mut b = HistoryBuilder::new().with_init(1);
        let mut last = 0u64;
        for i in 0..n {
            // One stale read mid-chain: two transactions update from the
            // same version — a lost update, forbidden at SI.
            let read = if i as usize == pick % (n as usize) && i > 0 { 0 } else { last };
            b.committed((i % 3) as u32, vec![Op::read(0u64, read), Op::write(0u64, i + 1)]);
            last = i + 1;
        }
        let h = b.build();
        let mut sequential = IncrementalChecker::new(IsolationLevel::SnapshotIsolation);
        let _ = sequential.push_history(&h);
        let mut sharded =
            ShardedIncrementalChecker::new(IsolationLevel::SnapshotIsolation, shards);
        let _ = sharded.push_history(&h, 1024);
        prop_assert_eq!(sequential.first_violation_at(), sharded.first_violation_at());
        prop_assert_eq!(sequential.finish().unwrap(), sharded.finish().unwrap());
    }

    /// Early exit: when a violating prefix exists, the checker latches no
    /// later than the batch verdict over that same prefix would flag it, and
    /// the latched status never reverts while the tail streams in.
    #[test]
    fn violations_latch_and_stay_latched(
        shapes in prop::collection::vec((shape_strategy(), 0u64..4, 0u64..4), 4..16),
        pick in 0usize..8,
        tail in 1usize..12,
    ) {
        let valid = serial_history(&shapes, 3, 2);
        let corrupted = corrupt(&valid, pick, 0);
        let mut checker = IncrementalChecker::new_ser()
            .with_init_keys(corrupted.keys());
        let mut latched_at: Option<usize> = None;
        for txn in corrupted.txns() {
            if Some(txn.id) == corrupted.init_txn() {
                continue;
            }
            if let Ok(StreamStatus::Violated) = checker.push(txn.clone()) {
                latched_at.get_or_insert(txn.id.index());
            }
        }
        // Extend with a tail of serial updates on a fresh key (untouched by
        // the corrupted prefix); the verdict must not change.
        let was_violated = checker.is_violated();
        let first = checker.first_violation_at();
        let fresh_key = 9_999u64;
        let mut last = Value(0);
        for i in 0..tail {
            let next = Value(1_000_000 + i as u64);
            let _ = checker.push_committed(
                0,
                vec![Op::read(fresh_key, last), Op::write(fresh_key, next)],
            );
            last = next;
        }
        prop_assert_eq!(checker.is_violated(), was_violated);
        prop_assert_eq!(checker.first_violation_at(), first);
        if let (Some(pos), Some(at)) = (latched_at, first) {
            prop_assert_eq!(pos, at.index());
        }
    }

    /// Valid timed histories — overlapping commit intervals included — are
    /// accepted by both batch SSER flavours and by the streaming checker,
    /// and sequential == sharded exactly for every shard/batch geometry.
    #[test]
    fn timed_valid_histories_accepted_by_all_sser_variants(
        shapes in prop::collection::vec((shape_strategy(), 0u64..6, 0u64..6), 1..20),
        intervals in prop::collection::vec((0u64..6, 0u64..40), 20),
        keys in 2u64..6,
        sessions in 1u32..4,
        key_offset in prop::sample::select(vec![0u64, 17, 1_000_003]),
    ) {
        let history = timed_serial_history(&shapes, keys, sessions, key_offset, &intervals);
        prop_assert!(check_sser(&history).unwrap().is_satisfied());
        prop_assert!(check_sser_naive(&history).unwrap().is_satisfied());
        let streaming =
            check_streaming(IsolationLevel::StrictSerializability, &history).unwrap();
        prop_assert!(streaming.is_satisfied(), "streaming SSER: {streaming:?}");
        for shards in [1usize, 2, 4] {
            for batch in [1usize, 5, 64] {
                let sharded = check_streaming_sharded(
                    IsolationLevel::StrictSerializability,
                    &history,
                    shards,
                    batch,
                )
                .unwrap();
                prop_assert_eq!(&streaming, &sharded);
            }
        }
    }

    /// Under injected commit-timestamp skew and/or a corrupted read, the
    /// streaming SSER verdict agrees with `check_sser` *and*
    /// `check_sser_naive` on accept/reject, and the sharded checker — fed in
    /// shuffled shard orders via varying shard counts, batch sizes and key
    /// spaces — returns a verdict identical to the sequential one.
    #[test]
    fn sser_streaming_agrees_with_batch_on_skewed_histories(
        shapes in prop::collection::vec((shape_strategy(), 0u64..4, 0u64..4), 2..16),
        intervals in prop::collection::vec((0u64..6, 0u64..40), 16),
        pick in 0usize..16,
        delta in 0u64..120,
        corrupt_read in prop::option::of((0usize..16, 0u64..3)),
        strip in prop::option::of((0usize..16, any::<bool>())),
        key_offset in prop::sample::select(vec![0u64, 23, 999_983]),
        shards in 1usize..5,
        batch in 1usize..9,
    ) {
        let valid = timed_serial_history(&shapes, 3, 2, key_offset, &intervals);
        let history = skewed(&valid, pick, delta, corrupt_read, strip);
        let batch_verdict = check_sser(&history).unwrap();
        let naive_verdict = check_sser_naive(&history).unwrap();
        prop_assert_eq!(
            batch_verdict.is_violated(),
            naive_verdict.is_violated(),
            "batch SSER flavours disagree: {:?} vs {:?}",
            batch_verdict,
            naive_verdict
        );
        let streaming =
            check_streaming(IsolationLevel::StrictSerializability, &history).unwrap();
        prop_assert_eq!(
            batch_verdict.is_violated(),
            streaming.is_violated(),
            "batch/streaming SSER mismatch: batch={:?} streaming={:?}",
            batch_verdict,
            streaming
        );
        let sharded = check_streaming_sharded(
            IsolationLevel::StrictSerializability,
            &history,
            shards,
            batch,
        )
        .unwrap();
        prop_assert_eq!(&streaming, &sharded, "sequential and sharded SSER diverge");
    }

    /// Feeding one transaction at a time, an SSER violation latches at some
    /// prefix and never un-latches while a clean, later-in-time tail streams
    /// in; the pre-tail verdict agrees with batch `check_sser`.
    #[test]
    fn sser_violations_latch_and_stay_latched(
        shapes in prop::collection::vec((shape_strategy(), 0u64..4, 0u64..4), 4..16),
        intervals in prop::collection::vec((0u64..6, 0u64..40), 16),
        pick in 0usize..8,
        delta in 10u64..200,
        tail in 1usize..12,
    ) {
        let valid = timed_serial_history(&shapes, 3, 2, 0, &intervals);
        let history = skewed(&valid, pick, delta, None, None);
        let mut checker = IncrementalSserChecker::new()
            .with_init_keys(history.txn(history.init_txn().unwrap()).write_set());
        for txn in history.txns() {
            if Some(txn.id) == history.init_txn() {
                continue;
            }
            let _ = checker.push(txn.clone());
        }
        // The completed-stream verdict agrees with batch on accept/reject.
        let batch_verdict = check_sser(&history).unwrap();
        prop_assert_eq!(
            checker.clone().finish().unwrap().is_violated(),
            batch_verdict.is_violated()
        );
        // A clean tail far in the future must not disturb the latch. The
        // tail transactions RMW one of the init keys, reading whatever the
        // checker's key state last installed there.
        let was_violated = checker.is_violated();
        let first = checker.first_violation_at();
        let tail_key = 0u64;
        let mut last = Value(0);
        for t in history.txns() {
            for key in t.write_set() {
                if key.raw() == tail_key {
                    if let Some(v) = t.last_write(key) {
                        last = v;
                    }
                }
            }
        }
        let mut instant = 1_000_000u64;
        for i in 0..tail {
            let next = Value(10_000_000 + i as u64);
            let _ = checker.push_committed(
                0,
                vec![Op::read(tail_key, last), Op::write(tail_key, next)],
                instant,
                instant + 3,
            );
            last = next;
            instant += 10;
        }
        prop_assert_eq!(checker.is_violated(), was_violated);
        prop_assert_eq!(checker.first_violation_at(), first);
    }
}

// ───────────────── checkpoint / resume differential ─────────────────────────

/// Seeds a sequential checker with `history`'s `⊥T` (if any) and returns the
/// non-initial transactions in stream order.
fn seeded(level: IsolationLevel, history: &History) -> (IncrementalChecker, Vec<Transaction>) {
    let checker = match history.init_txn() {
        Some(init) => IncrementalChecker::new(level).with_init_keys(history.txn(init).write_set()),
        None => IncrementalChecker::new(level),
    };
    let txns = history
        .txns()
        .iter()
        .filter(|t| Some(t.id) != history.init_txn())
        .cloned()
        .collect();
    (checker, txns)
}

/// Runs the interrupted pipeline — push `[0, cut)`, checkpoint, serialize the
/// snapshot, drop everything, resume, push the rest — and asserts the result
/// is bit-identical to the uninterrupted run: same verdict (payload
/// included), same `first_violation_at`.
fn assert_checkpoint_equivalence(level: IsolationLevel, history: &History, cut: usize) {
    let (mut reference, txns) = seeded(level, history);
    for t in &txns {
        let _ = reference.push(t.clone());
    }
    let expected_first = reference.first_violation_at();
    let expected = reference.finish();

    let (mut first_half, _) = seeded(level, history);
    let cut = cut % (txns.len() + 1);
    for t in &txns[..cut] {
        let _ = first_half.push(t.clone());
    }
    let snapshot = first_half.checkpoint();
    drop(first_half);
    let bytes = serde_json::to_string(&snapshot).expect("snapshot serializes");
    drop(snapshot);
    let snapshot: CheckerSnapshot = serde_json::from_str(&bytes).expect("snapshot parses");
    let mut resumed = IncrementalChecker::resume(snapshot);
    for t in &txns[cut..] {
        let _ = resumed.push(t.clone());
    }
    assert_eq!(resumed.first_violation_at(), expected_first, "{level}");
    let resumed_verdict = resumed.finish();
    assert_eq!(
        format!("{resumed_verdict:?}"),
        format!("{expected:?}"),
        "{level}"
    );
}

/// Same pipeline through the sharded checker: checkpoint at a batch
/// boundary, resume under a *different* shard geometry, finish.
fn assert_sharded_checkpoint_equivalence(
    level: IsolationLevel,
    history: &History,
    cut: usize,
    batch: usize,
    shards_before: usize,
    shards_after: usize,
) {
    let (mut reference, txns) = seeded(level, history);
    for t in &txns {
        let _ = reference.push(t.clone());
    }
    let expected_first = reference.first_violation_at();
    let expected = reference.finish();

    let mut sharded = match history.init_txn() {
        Some(init) => ShardedIncrementalChecker::new(level, shards_before)
            .with_init_keys(history.txn(init).write_set()),
        None => ShardedIncrementalChecker::new(level, shards_before),
    };
    let cut = cut % (txns.len() + 1);
    let batch = batch.max(1);
    for chunk in txns[..cut].chunks(batch) {
        let _ = sharded.push_batch(chunk.to_vec());
    }
    let snapshot = sharded.checkpoint();
    drop(sharded);
    let bytes = serde_json::to_string(&snapshot).expect("snapshot serializes");
    let snapshot: CheckerSnapshot = serde_json::from_str(&bytes).expect("snapshot parses");
    let mut resumed = ShardedIncrementalChecker::resume(snapshot, shards_after);
    for chunk in txns[cut..].chunks(batch) {
        let _ = resumed.push_batch(chunk.to_vec());
    }
    assert_eq!(resumed.first_violation_at(), expected_first, "{level}");
    let resumed_verdict = resumed.finish();
    assert_eq!(
        format!("{resumed_verdict:?}"),
        format!("{expected:?}"),
        "{level}"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Checkpoint at a random prefix, drop everything, resume, finish:
    /// verdict, counterexample and `first_violation_at` must be
    /// bit-identical to the uninterrupted run — on valid *and* corrupted
    /// histories, across SER and SI.
    #[test]
    fn checkpoint_resume_is_bit_identical_ser_si(
        shapes in prop::collection::vec((shape_strategy(), 0u64..6, 0u64..6), 1..24),
        keys in 2u64..6,
        sessions in 1u32..4,
        cut in 0usize..24,
        corruption in prop::option::of((0usize..24, 1u64..50)),
    ) {
        let mut history = serial_history(&shapes, keys, sessions);
        if let Some((pick, stale)) = corruption {
            history = corrupt(&history, pick, stale);
        }
        for level in [IsolationLevel::Serializability, IsolationLevel::SnapshotIsolation] {
            assert_checkpoint_equivalence(level, &history, cut);
        }
    }

    /// The same guarantee for the online SSER time-chain, over timed
    /// histories with overlapping intervals, clock skew, stale reads and
    /// partially timed records.
    #[test]
    fn checkpoint_resume_is_bit_identical_sser(
        shapes in prop::collection::vec((shape_strategy(), 0u64..5, 0u64..5), 1..20),
        keys in 2u64..5,
        sessions in 1u32..4,
        intervals in prop::collection::vec((0u64..7, 0u64..40), 1..8),
        cut in 0usize..20,
        skew in prop::option::of((0usize..20, 1u64..200)),
        corruption in prop::option::of((0usize..20, 1u64..50)),
        strip in prop::option::of((0usize..20, 0u64..2)),
    ) {
        let mut history = timed_serial_history(&shapes, keys, sessions, 0, &intervals);
        if skew.is_some() || corruption.is_some() || strip.is_some() {
            let (pick, delta) = skew.unwrap_or((0, 0));
            let strip = strip.map(|(sp, side)| (sp, side == 0));
            history = skewed(&history, pick, delta, corruption, strip);
        }
        assert_checkpoint_equivalence(IsolationLevel::StrictSerializability, &history, cut);
    }

    /// Sharded checkpoints resume into different geometries (including the
    /// sequential checker) with bit-identical outcomes.
    #[test]
    fn sharded_checkpoint_resume_is_bit_identical(
        shapes in prop::collection::vec((shape_strategy(), 0u64..6, 0u64..6), 1..20),
        keys in 2u64..6,
        sessions in 1u32..4,
        cut in 0usize..20,
        batch in 1usize..9,
        shards_before in 1usize..4,
        shards_after in 1usize..5,
        corruption in prop::option::of((0usize..20, 1u64..50)),
    ) {
        let mut history = serial_history(&shapes, keys, sessions);
        if let Some((pick, stale)) = corruption {
            history = corrupt(&history, pick, stale);
        }
        for level in [
            IsolationLevel::Serializability,
            IsolationLevel::SnapshotIsolation,
            IsolationLevel::StrictSerializability,
        ] {
            assert_sharded_checkpoint_equivalence(
                level, &history, cut, batch, shards_before, shards_after,
            );
        }
    }
}

// ───────────────── epoch-GC differential ─────────────────────────────────────

/// Small GC geometries for the epoch-GC differential tests. The engine
/// sweeps every `every` transactions but only commits a graph-side
/// collection every fourth sweep epoch, so with these cadences most random
/// history lengths are *not* multiples of the commit cycle (`4·every`) and
/// the run ends with the GC window straddling an epoch boundary —
/// uncommitted sweep-only epochs whose deferred state the verdict must not
/// depend on.
fn gc_geometry_strategy() -> impl Strategy<Value = GcPolicy> {
    prop::sample::select(vec![
        GcPolicy::clamped(8, 2),
        GcPolicy::clamped(12, 3),
        GcPolicy::clamped(10, 4),
        GcPolicy::clamped(6, 1),
    ])
}

/// Uninterrupted un-GC'd reference outcome for `history` at `level`.
fn ungced_reference(level: IsolationLevel, history: &History) -> (Option<TxnId>, String) {
    let (mut reference, txns) = seeded(level, history);
    for t in &txns {
        let _ = reference.push(t.clone());
    }
    let first = reference.first_violation_at();
    (first, format!("{:?}", reference.finish()))
}

/// Corrupts one read to return the *previous* version of its key, picking a
/// target transaction whose previous version was installed at most `max_age`
/// transactions earlier. Unlike [`corrupt`] — whose stale value may reference
/// state arbitrarily far in the past, which a windowed GC is *allowed* to
/// have retired (the qualified-certificate contract) — this keeps the
/// violation inside the staleness window, where GC'd and un-GC'd verdicts
/// must be bit-identical. Returns the history unchanged when no transaction
/// qualifies (the valid history then trivially satisfies the property).
fn corrupt_fresh(history: &History, pick: usize, max_age: usize) -> History {
    let user: Vec<_> = history
        .txns()
        .iter()
        .filter(|t| Some(t.id) != history.init_txn())
        .collect();
    // versions[key] = (user txn index, value) of installed versions, oldest
    // first; candidates = txns whose first read could be made one-version
    // stale against a version no older than `max_age`.
    let mut versions: std::collections::HashMap<u64, Vec<(usize, Value)>> =
        std::collections::HashMap::new();
    let mut candidates: Vec<(usize, Value)> = Vec::new();
    for (i, t) in user.iter().enumerate() {
        if let Some(Op::Read { key, .. }) = t.ops.first() {
            if let Some(vs) = versions.get(&key.raw()) {
                if vs.len() >= 2 {
                    let (installed_at, stale) = vs[vs.len() - 2];
                    if i - installed_at <= max_age {
                        candidates.push((i, stale));
                    }
                }
            }
        }
        for key in t.write_set() {
            if let Some(v) = t.last_write(key) {
                versions.entry(key.raw()).or_default().push((i, v));
            }
        }
    }
    let Some(&(target, stale)) = candidates.get(pick % candidates.len().max(1)) else {
        return history.clone();
    };
    let mut builder = HistoryBuilder::new().with_init(history.keys().len() as u64);
    for (i, t) in user.iter().enumerate() {
        let mut ops = t.ops.clone();
        if i == target {
            if let Some(Op::Read { value, .. }) = ops.first_mut() {
                *value = stale;
            }
        }
        builder.committed(t.session.0, ops);
    }
    builder.build()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// The epoch-GC'd sequential checker is bit-identical to the from-scratch
    /// un-GC'd one — verdict payload and `first_violation_at` — on valid
    /// histories and histories with an in-window stale read, across SER, SI
    /// and (untimed) SSER, for GC windows straddling commit-epoch boundaries.
    #[test]
    fn epoch_gc_verdicts_match_ungced_ser_si_sser(
        shapes in prop::collection::vec((shape_strategy(), 0u64..6, 0u64..6), 8..48),
        keys in 2u64..6,
        sessions in 1u32..4,
        pick in 0usize..48,
        policy in gc_geometry_strategy(),
    ) {
        let valid = serial_history(&shapes, keys, sessions);
        let history = corrupt_fresh(&valid, pick, policy.window / 2);
        for level in [
            IsolationLevel::Serializability,
            IsolationLevel::SnapshotIsolation,
            IsolationLevel::StrictSerializability,
        ] {
            let (expected_first, expected) = ungced_reference(level, &history);
            let (mut gced, txns) = seeded(level, &history);
            gced.set_gc(policy);
            for t in &txns {
                let _ = gced.push(t.clone());
            }
            prop_assert_eq!(gced.first_violation_at(), expected_first, "{}", level);
            prop_assert_eq!(format!("{:?}", gced.finish()), expected, "{}", level);
        }
    }

    /// The same guarantee for the timed SSER path: overlapping commit
    /// intervals, partially timed records, and a *small* clock skew whose
    /// induced real-time violation stays well inside the GC window (begins
    /// advance by at least one tick per transaction, so a `delta`-tick skew
    /// reaches at most `delta` transactions back).
    #[test]
    fn epoch_gc_verdicts_match_ungced_timed_sser(
        shapes in prop::collection::vec((shape_strategy(), 0u64..4, 0u64..4), 8..32),
        intervals in prop::collection::vec((1u64..6, 0u64..40), 16),
        pick in 0usize..32,
        delta in 0u64..8,
        strip in prop::option::of((0usize..32, any::<bool>())),
    ) {
        let policy = GcPolicy::clamped(16, 3);
        let valid = timed_serial_history(&shapes, 3, 2, 0, &intervals);
        let history = skewed(&valid, pick, delta, None, strip);
        let level = IsolationLevel::StrictSerializability;
        let (expected_first, expected) = ungced_reference(level, &history);
        let (mut gced, txns) = seeded(level, &history);
        gced.set_gc(policy);
        for t in &txns {
            let _ = gced.push(t.clone());
        }
        prop_assert_eq!(gced.first_violation_at(), expected_first);
        prop_assert_eq!(format!("{:?}", gced.finish()), expected);
    }

    /// The GC'd *sharded* checker — whose sweeps overlap the merge — returns
    /// outcomes bit-identical to the un-GC'd sequential reference for every
    /// geometry, including batch sizes that are not multiples of the GC
    /// cadence (collections fire mid-batch relative to epoch boundaries).
    #[test]
    fn epoch_gc_sharded_matches_ungced_sequential(
        shapes in prop::collection::vec((shape_strategy(), 0u64..4, 0u64..4), 8..40),
        pick in 0usize..40,
        shards in 1usize..5,
        batch in 1usize..11,
        policy in gc_geometry_strategy(),
    ) {
        let valid = serial_history(&shapes, 3, 2);
        // Half the sweep margin of the sequential tests: the sharded
        // checker's sweeps fire at batch boundaries, up to a batch later
        // than the sequential cadence.
        let history = corrupt_fresh(&valid, pick, policy.window / 4);
        for level in [
            IsolationLevel::Serializability,
            IsolationLevel::SnapshotIsolation,
            IsolationLevel::StrictSerializability,
        ] {
            let (expected_first, expected) = ungced_reference(level, &history);
            let (_, txns) = seeded(level, &history);
            let mut sharded = match history.init_txn() {
                Some(init) => ShardedIncrementalChecker::new(level, shards)
                    .with_init_keys(history.txn(init).write_set()),
                None => ShardedIncrementalChecker::new(level, shards),
            }
            .with_gc(policy);
            for chunk in txns.chunks(batch) {
                let _ = sharded.push_batch(chunk.to_vec());
            }
            prop_assert_eq!(sharded.first_violation_at(), expected_first, "{}", level);
            prop_assert_eq!(format!("{:?}", sharded.finish()), expected, "{}", level);
        }
    }

    /// Checkpointing a GC'd checker mid-stream — including between a sweep
    /// epoch and its deferred graph-side collection — and resuming must be
    /// bit-identical to the *uninterrupted GC'd* run on any history (even
    /// corruption reaching past the window): the snapshot carries the epoch
    /// counter and arena bases, so the resumed run's sweep and collection
    /// schedule replays exactly.
    #[test]
    fn epoch_gc_checkpoint_resume_is_bit_identical(
        shapes in prop::collection::vec((shape_strategy(), 0u64..6, 0u64..6), 8..40),
        keys in 2u64..6,
        cut in 0usize..40,
        corruption in prop::option::of((0usize..40, 1u64..50)),
        policy in gc_geometry_strategy(),
    ) {
        let mut history = serial_history(&shapes, keys, 3);
        if let Some((pick, stale)) = corruption {
            history = corrupt(&history, pick, stale);
        }
        for level in [
            IsolationLevel::Serializability,
            IsolationLevel::SnapshotIsolation,
            IsolationLevel::StrictSerializability,
        ] {
            let (mut reference, txns) = seeded(level, &history);
            reference.set_gc(policy);
            for t in &txns {
                let _ = reference.push(t.clone());
            }
            let expected_first = reference.first_violation_at();
            let expected = format!("{:?}", reference.finish());

            let (mut first_half, _) = seeded(level, &history);
            first_half.set_gc(policy);
            let cut = cut % (txns.len() + 1);
            for t in &txns[..cut] {
                let _ = first_half.push(t.clone());
            }
            let snapshot = first_half.checkpoint();
            drop(first_half);
            let bytes = serde_json::to_string(&snapshot).expect("snapshot serializes");
            drop(snapshot);
            let snapshot: CheckerSnapshot =
                serde_json::from_str(&bytes).expect("snapshot parses");
            let mut resumed = IncrementalChecker::resume(snapshot);
            for t in &txns[cut..] {
                let _ = resumed.push(t.clone());
            }
            prop_assert_eq!(resumed.first_violation_at(), expected_first, "{}", level);
            prop_assert_eq!(format!("{:?}", resumed.finish()), expected, "{}", level);
        }
    }
}
