//! # mtc-core
//!
//! The paper's primary contribution: efficient verification of strong
//! isolation levels over *mini-transaction* (MT) histories.
//!
//! A mini-transaction (Definition 8) contains one or two reads and at most
//! two writes, and every write is preceded by a read of the same object (the
//! read-modify-write pattern). Together with the unique-value convention this
//! makes the dependency graph of a history (nearly) unique, so:
//!
//! * [`check_ser`] decides serializability in `O(n)`,
//! * [`check_si`] decides snapshot isolation in `O(n)` (with an early exit on
//!   the DIVERGENCE pattern),
//! * [`check_sser`] decides strict serializability in `O(n²)` (reference) or
//!   `O(n log n)` using a time-chain encoding of the real-time order,
//! * [`lwt::check_linearizability`] decides linearizability of
//!   lightweight-transaction histories in `O(n)` (Algorithm 2, `VL-LWT`).
//!
//! All verifiers are *sound and complete* for MT histories: they report a
//! violation if and only if the history violates the corresponding level, and
//! on violation they return a human-readable counterexample in the style of
//! Figures 12 and 18 of the paper.
//!
//! The [`npc`] module contains the Appendix-C artefact: the polynomial
//! reduction from CNF satisfiability to SI-checking of MT histories *without*
//! unique values, demonstrating why the unique-value convention is essential
//! for tractability.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod build;
pub mod check;
pub mod divergence;
pub mod incremental;
pub mod lwt;
pub mod mini;
pub mod npc;
pub mod verdict;

pub use build::{build_dependency, build_dependency_reference, BuildError};
pub use check::{
    check, check_ser, check_ser_with, check_si, check_si_with, check_sser, check_sser_naive,
    check_sser_naive_with, check_sser_with, CheckOptions, IsolationLevel,
};
pub use divergence::{find_divergence, Divergence};
pub use incremental::tune::{tune, tune_for, ShardTuning};
pub use incremental::{
    check_streaming, check_streaming_sharded, check_streaming_with, CheckerSnapshot, Eviction,
    GcPolicy, IncrementalChecker, IncrementalSserChecker, ShardedIncrementalChecker, StreamStatus,
    SNAPSHOT_VERSION,
};
pub use lwt::{check_linearizability, check_linearizability_single_key, LwtError};
pub use mini::{validate_history, validate_transaction, MtViolation};
pub use verdict::{CheckError, Verdict, Violation};
