//! Mini-transaction validation (Definitions 8 and 9 of the paper).
//!
//! A *mini-transaction* contains one or two read operations and at most two
//! write operations, and every write is (not necessarily immediately)
//! preceded by a read of the same object. A *mini-transaction history*
//! consists solely of mini-transactions (besides the initial transaction
//! `⊥T`) in which every committed write installs a unique value per object.
//!
//! The verifiers of [`crate::check`] call [`validate_history`] before doing
//! any graph work: the linear-time guarantees only hold on valid MT
//! histories.

use mtc_history::{History, Key, Transaction, TxnId, Value};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::fmt;

/// Maximum number of read operations in a mini-transaction.
pub const MAX_READS: usize = 2;
/// Maximum number of write operations in a mini-transaction.
pub const MAX_WRITES: usize = 2;
/// Maximum number of operations in a mini-transaction.
pub const MAX_OPS: usize = 4;

/// Ways a transaction or history can fail to be a mini-transaction (history).
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum MtViolation {
    /// The transaction has no read operation.
    NoRead {
        /// Offending transaction.
        txn: TxnId,
    },
    /// The transaction has more than [`MAX_READS`] reads.
    TooManyReads {
        /// Offending transaction.
        txn: TxnId,
        /// Number of reads found.
        reads: usize,
    },
    /// The transaction has more than [`MAX_WRITES`] writes.
    TooManyWrites {
        /// Offending transaction.
        txn: TxnId,
        /// Number of writes found.
        writes: usize,
    },
    /// A write is not preceded by a read of the same object (the RMW pattern
    /// is broken).
    WriteWithoutRead {
        /// Offending transaction.
        txn: TxnId,
        /// Key written blindly.
        key: Key,
    },
    /// Two committed transactions wrote the same value to the same key.
    DuplicateValue {
        /// Offending key.
        key: Key,
        /// The duplicated value.
        value: Value,
        /// First writer.
        first: TxnId,
        /// Second writer.
        second: TxnId,
    },
}

impl fmt::Display for MtViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MtViolation::NoRead { txn } => write!(f, "{txn} contains no read operation"),
            MtViolation::TooManyReads { txn, reads } => {
                write!(f, "{txn} contains {reads} reads (max {MAX_READS})")
            }
            MtViolation::TooManyWrites { txn, writes } => {
                write!(f, "{txn} contains {writes} writes (max {MAX_WRITES})")
            }
            MtViolation::WriteWithoutRead { txn, key } => {
                write!(f, "{txn} writes key {key} without reading it first")
            }
            MtViolation::DuplicateValue {
                key,
                value,
                first,
                second,
            } => write!(
                f,
                "value {value} written to key {key} by both {first} and {second}"
            ),
        }
    }
}

impl std::error::Error for MtViolation {}

/// Checks that a single transaction is a mini-transaction (Definition 8).
pub fn validate_transaction(txn: &Transaction) -> Result<(), MtViolation> {
    let reads = txn.read_count();
    let writes = txn.write_count();
    if reads == 0 {
        return Err(MtViolation::NoRead { txn: txn.id });
    }
    if reads > MAX_READS {
        return Err(MtViolation::TooManyReads { txn: txn.id, reads });
    }
    if writes > MAX_WRITES {
        return Err(MtViolation::TooManyWrites {
            txn: txn.id,
            writes,
        });
    }
    // RMW pattern: the first write of each key must be preceded by a read of
    // that key.
    for (i, op) in txn.ops.iter().enumerate() {
        if op.is_write() {
            let key = op.key();
            let read_before = txn.ops[..i].iter().any(|o| o.is_read() && o.key() == key);
            if !read_before {
                return Err(MtViolation::WriteWithoutRead { txn: txn.id, key });
            }
        }
    }
    Ok(())
}

/// True iff the transaction is a mini-transaction.
pub fn is_mini_transaction(txn: &Transaction) -> bool {
    validate_transaction(txn).is_ok()
}

/// Checks that `history` is a mini-transaction history (Definition 9):
/// every transaction except `⊥T` is a mini-transaction, and committed writes
/// install unique values per object.
///
/// Aborted transactions are validated for shape as well (they were issued as
/// mini-transactions) but do not participate in the uniqueness check.
pub fn validate_history(history: &History) -> Result<(), MtViolation> {
    for txn in history.txns() {
        if Some(txn.id) == history.init_txn() {
            continue;
        }
        validate_transaction(txn)?;
    }
    check_unique_values(history)
}

/// Checks only the unique-value condition of Definition 9.
pub fn check_unique_values(history: &History) -> Result<(), MtViolation> {
    let mut seen: HashMap<(Key, Value), TxnId> = HashMap::new();
    for txn in history.committed() {
        for op in &txn.ops {
            if op.is_write() {
                let entry = (op.key(), op.value());
                if let Some(&first) = seen.get(&entry) {
                    if first != txn.id {
                        return Err(MtViolation::DuplicateValue {
                            key: entry.0,
                            value: entry.1,
                            first,
                            second: txn.id,
                        });
                    }
                } else {
                    seen.insert(entry, txn.id);
                }
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use mtc_history::{HistoryBuilder, Op, SessionId};

    fn txn(ops: Vec<Op>) -> Transaction {
        Transaction::committed(TxnId(1), SessionId(0), ops)
    }

    #[test]
    fn read_write_pair_is_a_mini_transaction() {
        let t = txn(vec![Op::read(0u64, 0u64), Op::write(0u64, 1u64)]);
        assert!(is_mini_transaction(&t));
    }

    #[test]
    fn double_rmw_is_a_mini_transaction() {
        let t = txn(vec![
            Op::read(0u64, 0u64),
            Op::write(0u64, 1u64),
            Op::read(1u64, 0u64),
            Op::write(1u64, 2u64),
        ]);
        assert!(is_mini_transaction(&t));
    }

    #[test]
    fn read_only_transactions_are_mini_transactions() {
        assert!(is_mini_transaction(&txn(vec![Op::read(0u64, 0u64)])));
        assert!(is_mini_transaction(&txn(vec![
            Op::read(0u64, 0u64),
            Op::read(1u64, 0u64)
        ])));
    }

    #[test]
    fn write_skew_shape_is_a_mini_transaction() {
        // Two reads then one write: needed for the WRITESKEW anomaly (Fig 5n).
        let t = txn(vec![
            Op::read(0u64, 0u64),
            Op::read(1u64, 0u64),
            Op::write(0u64, 1u64),
        ]);
        assert!(is_mini_transaction(&t));
    }

    #[test]
    fn blind_write_is_rejected() {
        let t = txn(vec![Op::write(0u64, 1u64)]);
        assert_eq!(
            validate_transaction(&t),
            Err(MtViolation::NoRead { txn: TxnId(1) })
        );
        let t = txn(vec![Op::read(1u64, 0u64), Op::write(0u64, 1u64)]);
        assert_eq!(
            validate_transaction(&t),
            Err(MtViolation::WriteWithoutRead {
                txn: TxnId(1),
                key: Key(0)
            })
        );
    }

    #[test]
    fn too_many_operations_rejected() {
        let t = txn(vec![
            Op::read(0u64, 0u64),
            Op::read(1u64, 0u64),
            Op::read(2u64, 0u64),
        ]);
        assert!(matches!(
            validate_transaction(&t),
            Err(MtViolation::TooManyReads { reads: 3, .. })
        ));
        let t = txn(vec![
            Op::read(0u64, 0u64),
            Op::read(1u64, 0u64),
            Op::write(0u64, 1u64),
            Op::write(1u64, 2u64),
            Op::write(1u64, 3u64),
        ]);
        assert!(matches!(
            validate_transaction(&t),
            Err(MtViolation::TooManyWrites { writes: 3, .. })
        ));
    }

    #[test]
    fn history_validation_ignores_the_init_transaction() {
        let mut b = HistoryBuilder::new().with_init(3);
        b.committed(0, vec![Op::read(0u64, 0u64), Op::write(0u64, 5u64)]);
        let h = b.build();
        // ⊥T performs blind writes but is exempt.
        assert!(validate_history(&h).is_ok());
    }

    #[test]
    fn duplicate_values_rejected() {
        let mut b = HistoryBuilder::new().with_init(1);
        b.committed(0, vec![Op::read(0u64, 0u64), Op::write(0u64, 5u64)]);
        b.committed(1, vec![Op::read(0u64, 0u64), Op::write(0u64, 5u64)]);
        let h = b.build();
        assert!(matches!(
            validate_history(&h),
            Err(MtViolation::DuplicateValue { .. })
        ));
    }

    #[test]
    fn aborted_duplicates_are_tolerated() {
        let mut b = HistoryBuilder::new().with_init(1);
        b.committed(0, vec![Op::read(0u64, 0u64), Op::write(0u64, 5u64)]);
        b.aborted(1, vec![Op::read(0u64, 0u64), Op::write(0u64, 5u64)]);
        let h = b.build();
        assert!(validate_history(&h).is_ok());
    }

    #[test]
    fn anomaly_catalogue_is_mt_valid() {
        for (kind, h) in mtc_history::anomalies::catalogue() {
            assert!(
                validate_history(&h).is_ok(),
                "anomaly {kind} is not an MT history"
            );
        }
    }
}
