//! The verifiers `CHECKSSER`, `CHECKSER` and `CHECKSI` (Algorithm 1).
//!
//! All three share the same structure:
//!
//! 1. validate that the input is a mini-transaction history (Definition 9);
//! 2. pre-scan for intra-transactional / read-provenance anomalies
//!    (Figures 5a–5g) — any hit refutes every strong level immediately;
//! 3. build the (unique) dependency graph with [`crate::build_dependency`];
//! 4. decide acyclicity of the appropriate edge combination and, on a cycle,
//!    return a labelled counterexample.
//!
//! `CHECKSI` additionally rejects the DIVERGENCE pattern before any graph
//! work (Lemma 1), and checks acyclicity of the *composed* graph
//! `(SO ∪ WR ∪ WW) ; RW?` rather than of the plain union.
//!
//! `CHECKSSER` comes in two flavours: [`check_sser_naive`] materializes all
//! `Θ(n²)` real-time edges exactly as in the paper, while [`check_sser`]
//! encodes the real-time order through a sorted chain of *time nodes*,
//! bringing the complexity down to `O(n log n)` without changing verdicts.

use crate::build::{build_dependency, build_dependency_reference};
use crate::divergence::find_divergence;
use crate::mini::validate_history;
use crate::verdict::{CheckError, Verdict, Violation};
use mtc_history::{find_intra_anomalies, DependencyGraph, DiGraph, Edge, EdgeKind, History, TxnId};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// The three strong isolation levels handled by MTC.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub enum IsolationLevel {
    /// Strict serializability (Definition 4).
    StrictSerializability,
    /// Serializability (Definition 5).
    Serializability,
    /// Snapshot isolation (Definition 6).
    SnapshotIsolation,
}

impl std::fmt::Display for IsolationLevel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            IsolationLevel::StrictSerializability => write!(f, "SSER"),
            IsolationLevel::Serializability => write!(f, "SER"),
            IsolationLevel::SnapshotIsolation => write!(f, "SI"),
        }
    }
}

/// Tuning knobs for the verifiers. The defaults match the paper's MTC tool.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct CheckOptions {
    /// Validate the mini-transaction shape and unique values first
    /// (Definition 9). Disable only for inputs known to be valid.
    pub validate_mt: bool,
    /// Run the intra-transactional pre-scan (footnote 1 of Section IV-B).
    pub prescan_intra: bool,
    /// Use the reference `BUILDDEPENDENCY` with per-object WW transitive
    /// closure instead of the optimized variant (Section IV-C). Only affects
    /// performance, never verdicts (Theorems 1 and 2).
    pub reference_build: bool,
    /// For `CHECKSI`, skip the early DIVERGENCE test and rely on the general
    /// construction plus Lemma 3 reasoning. Exposed for the ablation bench.
    pub skip_divergence_early_exit: bool,
}

impl Default for CheckOptions {
    fn default() -> Self {
        CheckOptions {
            validate_mt: true,
            prescan_intra: true,
            reference_build: false,
            skip_divergence_early_exit: false,
        }
    }
}

/// Checks a history against `level` with default options.
pub fn check(level: IsolationLevel, history: &History) -> Result<Verdict, CheckError> {
    match level {
        IsolationLevel::StrictSerializability => check_sser(history),
        IsolationLevel::Serializability => check_ser(history),
        IsolationLevel::SnapshotIsolation => check_si(history),
    }
}

/// `CHECKSER` with default options.
pub fn check_ser(history: &History) -> Result<Verdict, CheckError> {
    check_ser_with(history, &CheckOptions::default())
}

/// `CHECKSI` with default options.
pub fn check_si(history: &History) -> Result<Verdict, CheckError> {
    check_si_with(history, &CheckOptions::default())
}

/// `CHECKSSER` (time-chain encoding of RT) with default options.
pub fn check_sser(history: &History) -> Result<Verdict, CheckError> {
    check_sser_with(history, &CheckOptions::default())
}

/// `CHECKSSER` materializing all RT edges, exactly as in Algorithm 1
/// (`Θ(n²)`), with default options.
pub fn check_sser_naive(history: &History) -> Result<Verdict, CheckError> {
    check_sser_naive_with(history, &CheckOptions::default())
}

fn preflight(history: &History, opts: &CheckOptions) -> Result<Option<Verdict>, CheckError> {
    if opts.validate_mt {
        if let Err(v) = validate_history(history) {
            return Err(CheckError::NotMiniTransaction(v));
        }
    }
    if opts.prescan_intra {
        let violations = find_intra_anomalies(history);
        if !violations.is_empty() {
            return Ok(Some(Verdict::Violated(Violation::Intra(violations))));
        }
    }
    Ok(None)
}

fn build(
    history: &History,
    with_rt: bool,
    opts: &CheckOptions,
) -> Result<DependencyGraph, CheckError> {
    if opts.reference_build {
        build_dependency_reference(history, with_rt)
    } else {
        build_dependency(history, with_rt)
    }
}

/// `CHECKSER` with explicit options.
pub fn check_ser_with(history: &History, opts: &CheckOptions) -> Result<Verdict, CheckError> {
    if let Some(verdict) = preflight(history, opts)? {
        return Ok(verdict);
    }
    let g = build(history, false, opts)?;
    Ok(match g.find_labelled_cycle(|_| true) {
        Some(edges) => Verdict::Violated(Violation::Cycle { edges }),
        None => Verdict::Satisfied,
    })
}

/// `CHECKSI` with explicit options.
pub fn check_si_with(history: &History, opts: &CheckOptions) -> Result<Verdict, CheckError> {
    if let Some(verdict) = preflight(history, opts)? {
        return Ok(verdict);
    }
    if !opts.skip_divergence_early_exit {
        if let Some(d) = find_divergence(history) {
            return Ok(Verdict::Violated(d.into_violation()));
        }
    }
    let g = build(history, false, opts)?;

    // Even without the early exit, a DIVERGENCE manifests as a WW "fork":
    // when present, the graph is not a legal dependency graph (Lemma 3) and
    // the two derived RW edges already form a cycle in the plain union, which
    // the composed-graph construction below would mask. Catch it here.
    if opts.skip_divergence_early_exit {
        if let Some(d) = find_divergence(history) {
            return Ok(Verdict::Violated(d.into_violation()));
        }
    }

    match composed_si_cycle(&g) {
        Some(edges) => Ok(Verdict::Violated(Violation::Cycle { edges })),
        None => Ok(Verdict::Satisfied),
    }
}

/// Finds a cycle in `(SO ∪ WR ∪ WW) ; RW?` and expands it back to labelled
/// dependency edges; returns `None` if the composed graph is acyclic.
fn composed_si_cycle(g: &DependencyGraph) -> Option<Vec<Edge>> {
    let n = g.node_count();
    let mut composed = DiGraph::new(n);
    // Provenance of each composed edge: the one or two original edges it
    // expands to. Keep the first (shortest) expansion per (from, to).
    let mut provenance: HashMap<(usize, usize), Vec<Edge>> = HashMap::new();

    // Per-node RW successors for the `; RW?` part.
    let mut rw_out: Vec<Vec<Edge>> = vec![Vec::new(); n];
    for e in g.edges() {
        if e.kind.is_rw() {
            rw_out[e.from.index()].push(*e);
        }
    }

    let mut push = |composed: &mut DiGraph, from: usize, to: usize, path: Vec<Edge>| {
        let key = (from, to);
        if let std::collections::hash_map::Entry::Vacant(entry) = provenance.entry(key) {
            entry.insert(path);
            composed.add_edge(from, to);
        }
    };

    for e in g.edges() {
        let base = matches!(e.kind, EdgeKind::So | EdgeKind::Wr(_) | EdgeKind::Ww(_));
        if !base {
            continue;
        }
        let (a, b) = (e.from.index(), e.to.index());
        // base edge alone (the `?` of `RW?`)
        push(&mut composed, a, b, vec![*e]);
        // base ; RW
        for rw in &rw_out[b] {
            let c = rw.to.index();
            if a != c {
                push(&mut composed, a, c, vec![*e, *rw]);
            } else {
                // A two-edge cycle a → b → a: report it directly.
                return Some(vec![*e, *rw]);
            }
        }
    }

    let cycle = composed.find_cycle()?;
    let mut edges = Vec::new();
    for i in 0..cycle.len() {
        let u = cycle[i];
        let v = cycle[(i + 1) % cycle.len()];
        if let Some(path) = provenance.get(&(u, v)) {
            edges.extend(path.iter().copied());
        }
    }
    Some(edges)
}

/// `CHECKSSER` materializing all RT edges (`Θ(n²)`), with explicit options.
pub fn check_sser_naive_with(
    history: &History,
    opts: &CheckOptions,
) -> Result<Verdict, CheckError> {
    if let Some(verdict) = preflight(history, opts)? {
        return Ok(verdict);
    }
    let g = build(history, true, opts)?;
    Ok(match g.find_labelled_cycle(|_| true) {
        Some(edges) => Verdict::Violated(Violation::Cycle { edges }),
        None => Verdict::Satisfied,
    })
}

/// `CHECKSSER` using the time-chain encoding of the real-time order, with
/// explicit options.
///
/// Instead of adding an edge for every real-time-ordered pair of
/// transactions, the begin/end instants are sorted and turned into a chain of
/// auxiliary *time nodes*; each transaction points to the first instant after
/// its end and is pointed to from the instant of its begin. A dependency path
/// "travels back in time" exactly when the naive graph has an RT-involving
/// cycle, so verdicts coincide with [`check_sser_naive`] while the
/// construction stays `O(n log n)`.
pub fn check_sser_with(history: &History, opts: &CheckOptions) -> Result<Verdict, CheckError> {
    if let Some(verdict) = preflight(history, opts)? {
        return Ok(verdict);
    }
    let g = build(history, false, opts)?;
    let n = g.node_count();

    // Collect the distinct instants of committed transactions. A partially
    // timed transaction (only a begin or only an end recorded) still
    // constrains the real-time order on the side it has — exactly as in the
    // naive RT materialization, which only needs `a.end` and `b.begin`.
    let mut instants: Vec<u64> = Vec::new();
    for t in history.committed() {
        if let Some(b) = t.begin {
            instants.push(b);
        }
        if let Some(e) = t.end {
            instants.push(e);
        }
    }
    instants.sort_unstable();
    instants.dedup();
    let time_node =
        |instant: u64| -> Option<usize> { instants.binary_search(&instant).ok().map(|i| n + i) };
    let first_after = |instant: u64| -> Option<usize> {
        match instants.binary_search(&instant) {
            Ok(i) | Err(i) => {
                let j = if instants.get(i) == Some(&instant) {
                    i + 1
                } else {
                    i
                };
                if j < instants.len() {
                    Some(n + j)
                } else {
                    None
                }
            }
        }
    };

    let mut aug = DiGraph::new(n + instants.len());
    for e in g.edges() {
        aug.add_edge(e.from.index(), e.to.index());
    }
    for w in 0..instants.len().saturating_sub(1) {
        aug.add_edge(n + w, n + w + 1);
    }
    for t in history.committed() {
        if let Some(b) = t.begin {
            if let Some(tn) = time_node(b) {
                aug.add_edge(tn, t.id.index());
            }
        }
        if let Some(e) = t.end {
            if let Some(tn) = first_after(e) {
                aug.add_edge(t.id.index(), tn);
            }
        }
    }

    let Some(cycle) = aug.find_cycle() else {
        return Ok(Verdict::Satisfied);
    };

    // Splice time nodes out of the cycle: consecutive real transactions with
    // time nodes in between are connected by an RT edge.
    let reals: Vec<usize> = cycle.iter().copied().filter(|&v| v < n).collect();
    debug_assert!(
        !reals.is_empty(),
        "a cycle cannot consist of time nodes only"
    );
    let mut edges = Vec::new();
    let len = cycle.len();
    // Position of each real node in the cycle, to know whether the hop to the
    // next real node went through time nodes.
    let real_positions: Vec<usize> = (0..len).filter(|&i| cycle[i] < n).collect();
    for (idx, &pos) in real_positions.iter().enumerate() {
        let next_pos = real_positions[(idx + 1) % real_positions.len()];
        let u = cycle[pos];
        let v = cycle[next_pos];
        let direct_hop = (pos + 1) % len == next_pos;
        if direct_hop {
            let labelled = g.label_node_cycle(&[u, v], |_| true);
            if let Some(e) = labelled.into_iter().find(|e| e.from.index() == u) {
                edges.push(e);
                continue;
            }
        }
        edges.push(Edge {
            from: TxnId(u as u32),
            to: TxnId(v as u32),
            kind: EdgeKind::Rt,
        });
    }
    Ok(Verdict::Violated(Violation::Cycle { edges }))
}

#[cfg(test)]
mod tests {
    use super::*;
    use mtc_history::anomalies;
    use mtc_history::{HistoryBuilder, Op};

    /// A serial history: strictly increasing updates in one session.
    fn serial_history() -> History {
        let mut b = HistoryBuilder::new().with_init(2);
        b.committed_timed(0, vec![Op::read(0u64, 0u64), Op::write(0u64, 1u64)], 10, 11);
        b.committed_timed(0, vec![Op::read(1u64, 0u64), Op::write(1u64, 2u64)], 12, 13);
        b.committed_timed(1, vec![Op::read(0u64, 1u64), Op::read(1u64, 2u64)], 20, 21);
        b.build()
    }

    #[test]
    fn serial_history_satisfies_everything() {
        let h = serial_history();
        assert_eq!(check_ser(&h).unwrap(), Verdict::Satisfied);
        assert_eq!(check_si(&h).unwrap(), Verdict::Satisfied);
        assert_eq!(check_sser(&h).unwrap(), Verdict::Satisfied);
        assert_eq!(check_sser_naive(&h).unwrap(), Verdict::Satisfied);
    }

    #[test]
    fn anomaly_catalogue_matches_expected_matrix() {
        for (kind, h) in anomalies::catalogue() {
            let expected = kind.expected();
            let ser = check_ser(&h).unwrap();
            let si = check_si(&h).unwrap();
            let sser = check_sser(&h).unwrap();
            assert_eq!(
                ser.is_violated(),
                expected.violates_ser,
                "SER verdict mismatch for {kind}: {ser:?}"
            );
            assert_eq!(
                si.is_violated(),
                expected.violates_si,
                "SI verdict mismatch for {kind}: {si:?}"
            );
            assert_eq!(
                sser.is_violated(),
                expected.violates_sser,
                "SSER verdict mismatch for {kind}: {sser:?}"
            );
        }
    }

    #[test]
    fn divergence_early_exit_and_general_path_agree() {
        let h = anomalies::divergence();
        let with = check_si(&h).unwrap();
        let without = check_si_with(
            &h,
            &CheckOptions {
                skip_divergence_early_exit: true,
                ..CheckOptions::default()
            },
        )
        .unwrap();
        assert!(with.is_violated());
        assert!(without.is_violated());
    }

    #[test]
    fn reference_build_yields_identical_verdicts() {
        let opts = CheckOptions {
            reference_build: true,
            ..CheckOptions::default()
        };
        for (kind, h) in anomalies::catalogue() {
            assert_eq!(
                check_ser(&h).unwrap().is_violated(),
                check_ser_with(&h, &opts).unwrap().is_violated(),
                "SER/reference mismatch for {kind}"
            );
            assert_eq!(
                check_si(&h).unwrap().is_violated(),
                check_si_with(&h, &opts).unwrap().is_violated(),
                "SI/reference mismatch for {kind}"
            );
        }
    }

    #[test]
    fn write_skew_cycle_has_two_adjacent_rw_edges() {
        let h = anomalies::write_skew();
        let verdict = check_ser(&h).unwrap();
        let Some(Violation::Cycle { edges }) = verdict.violation() else {
            panic!("expected a cycle, got {verdict:?}");
        };
        let rw_count = edges.iter().filter(|e| e.kind.is_rw()).count();
        assert!(
            rw_count >= 2,
            "write skew must involve two RW edges: {edges:?}"
        );
    }

    #[test]
    fn lost_update_reported_as_divergence_for_si() {
        let h = anomalies::lost_update();
        let verdict = check_si(&h).unwrap();
        assert!(matches!(
            verdict.violation(),
            Some(Violation::Divergence { .. })
        ));
    }

    #[test]
    fn non_mt_history_is_rejected() {
        let mut b = HistoryBuilder::new().with_init(1);
        // Blind write: not a mini-transaction.
        b.committed(0, vec![Op::write(0u64, 1u64)]);
        let h = b.build();
        assert!(matches!(
            check_ser(&h),
            Err(CheckError::NotMiniTransaction(_))
        ));
        // With validation disabled the history is handled (blind write simply
        // lacks a WW predecessor).
        let opts = CheckOptions {
            validate_mt: false,
            ..CheckOptions::default()
        };
        assert!(check_ser_with(&h, &opts).is_ok());
    }

    #[test]
    fn real_time_violation_detected_only_by_sser() {
        // T1 writes x and finishes before T2 starts, but T2 still reads the
        // initial value of x: allowed by SER, forbidden by SSER.
        let mut b = HistoryBuilder::new().with_init(1);
        b.committed_timed(0, vec![Op::read(0u64, 0u64), Op::write(0u64, 1u64)], 10, 20);
        b.committed_timed(1, vec![Op::read(0u64, 0u64)], 30, 40);
        let h = b.build();
        assert_eq!(check_ser(&h).unwrap(), Verdict::Satisfied);
        assert_eq!(check_si(&h).unwrap(), Verdict::Satisfied);
        let sser = check_sser(&h).unwrap();
        let sser_naive = check_sser_naive(&h).unwrap();
        assert!(sser.is_violated(), "time-chain SSER missed the violation");
        assert!(sser_naive.is_violated(), "naive SSER missed the violation");
    }

    #[test]
    fn sser_counterexample_contains_an_rt_edge() {
        let mut b = HistoryBuilder::new().with_init(1);
        b.committed_timed(0, vec![Op::read(0u64, 0u64), Op::write(0u64, 1u64)], 10, 20);
        b.committed_timed(1, vec![Op::read(0u64, 0u64)], 30, 40);
        let h = b.build();
        let verdict = check_sser(&h).unwrap();
        let Some(Violation::Cycle { edges }) = verdict.violation() else {
            panic!("expected cycle, got {verdict:?}");
        };
        assert!(
            edges.iter().any(|e| e.kind == EdgeKind::Rt),
            "counterexample should mention real time: {edges:?}"
        );
    }

    #[test]
    fn self_inconsistent_interval_rejected_by_both_sser_flavours() {
        // A commit acknowledged before its own begin makes the real-time
        // relation non-irreflexive: no strict serialization exists. Both
        // encodings must reject (the naive one used to skip the self pair).
        let mut b = HistoryBuilder::new().with_init(1);
        b.committed_timed(0, vec![Op::read(0u64, 0u64)], 30, 10);
        let h = b.build();
        assert!(check_sser(&h).unwrap().is_violated());
        assert!(check_sser_naive(&h).unwrap().is_violated());
        assert!(check_ser(&h).unwrap().is_satisfied());
        assert!(check_si(&h).unwrap().is_satisfied());
    }

    #[test]
    fn naive_and_timechain_sser_agree_on_the_catalogue() {
        for (kind, h) in anomalies::catalogue() {
            assert_eq!(
                check_sser(&h).unwrap().is_violated(),
                check_sser_naive(&h).unwrap().is_violated(),
                "SSER variants disagree on {kind}"
            );
        }
    }

    #[test]
    fn check_dispatch_matches_direct_calls() {
        let h = anomalies::long_fork();
        assert_eq!(
            check(IsolationLevel::Serializability, &h)
                .unwrap()
                .is_violated(),
            check_ser(&h).unwrap().is_violated()
        );
        assert_eq!(
            check(IsolationLevel::SnapshotIsolation, &h)
                .unwrap()
                .is_violated(),
            check_si(&h).unwrap().is_violated()
        );
        assert_eq!(
            check(IsolationLevel::StrictSerializability, &h)
                .unwrap()
                .is_violated(),
            check_sser(&h).unwrap().is_violated()
        );
    }

    #[test]
    fn level_display() {
        assert_eq!(IsolationLevel::Serializability.to_string(), "SER");
        assert_eq!(IsolationLevel::SnapshotIsolation.to_string(), "SI");
        assert_eq!(IsolationLevel::StrictSerializability.to_string(), "SSER");
    }
}
