//! The Appendix-C artefact: NP-hardness of checking strong isolation on
//! mini-transaction histories *without* unique values.
//!
//! Theorem 8 of the paper reduces boolean satisfiability to SI-checking of MT
//! histories in which several writes may install the *same* value. This
//! module makes the reduction executable:
//!
//! * [`Cnf`] represents a CNF formula (with a brute-force [`Cnf::is_satisfiable`]
//!   reference solver used in tests and in the `npc_reduction` example);
//! * [`reduce_to_history`] builds the history `hϕ` of the proof: per variable
//!   `xₖ` a transaction pair `(aₖ, bₖ)`, per literal `λᵢⱼ` a triple
//!   `(wᵢⱼ, yᵢⱼ, zᵢⱼ)` whose reads and writes all use the *same* value on a
//!   dedicated object `vᵢⱼ`, wired together by the session-order pairs of
//!   Figure 16.
//!
//! Because the session order of the reduction is a DAG rather than a union of
//! per-client sequences, the result is returned as a [`NonUniqueHistory`]
//! (transactions plus an explicit set of session-order pairs) instead of an
//! ordinary [`mtc_history::History`]. The point of the artefact is the
//! *structure* of the instance — its size is linear in the formula and every
//! transaction is a mini-transaction — demonstrating exactly which assumption
//! (value uniqueness) the polynomial-time algorithms of this crate rely on.

use mtc_history::{Op, SessionId, Transaction, TxnId, TxnStatus};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// A literal: variable index (0-based) and polarity.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Literal {
    /// Variable index.
    pub var: usize,
    /// True for a positive literal `xᵥ`, false for `¬xᵥ`.
    pub positive: bool,
}

/// A CNF formula.
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Cnf {
    /// Number of variables.
    pub num_vars: usize,
    /// Clauses; each clause is a disjunction of literals.
    pub clauses: Vec<Vec<Literal>>,
}

impl Cnf {
    /// Builds a CNF formula from DIMACS-style signed integers: `3` means
    /// `x₂` (1-based positive), `-1` means `¬x₀`.
    pub fn from_clauses(num_vars: usize, clauses: &[&[i32]]) -> Self {
        let clauses = clauses
            .iter()
            .map(|c| {
                c.iter()
                    .map(|&l| {
                        assert!(l != 0, "0 is not a valid literal");
                        Literal {
                            var: (l.unsigned_abs() as usize) - 1,
                            positive: l > 0,
                        }
                    })
                    .collect()
            })
            .collect();
        Cnf { num_vars, clauses }
    }

    /// Evaluates the formula under `assignment` (one bool per variable).
    pub fn evaluate(&self, assignment: &[bool]) -> bool {
        self.clauses
            .iter()
            .all(|clause| clause.iter().any(|l| assignment[l.var] == l.positive))
    }

    /// Brute-force satisfiability (2^num_vars assignments). Returns a
    /// satisfying assignment if one exists. Intended for the small formulas
    /// used in tests and examples.
    pub fn is_satisfiable(&self) -> Option<Vec<bool>> {
        assert!(
            self.num_vars <= 24,
            "brute-force solver limited to 24 variables"
        );
        for bits in 0u64..(1u64 << self.num_vars) {
            let assignment: Vec<bool> = (0..self.num_vars).map(|i| bits & (1 << i) != 0).collect();
            if self.evaluate(&assignment) {
                return Some(assignment);
            }
        }
        None
    }

    /// Total number of literal occurrences.
    pub fn literal_count(&self) -> usize {
        self.clauses.iter().map(Vec::len).sum()
    }
}

/// The role a transaction plays in the reduction.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum GadgetRole {
    /// `aₖ` for variable `k`.
    A(usize),
    /// `bₖ` for variable `k`.
    B(usize),
    /// `wᵢⱼ` for clause `i`, literal `j`.
    W(usize, usize),
    /// `yᵢⱼ` for clause `i`, literal `j`.
    Y(usize, usize),
    /// `zᵢⱼ` for clause `i`, literal `j`.
    Z(usize, usize),
}

/// A mini-transaction history whose session order is an arbitrary partial
/// order (given as explicit pairs) and whose writes need *not* install unique
/// values — the input class of the NP-hardness theorems of Appendix C.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct NonUniqueHistory {
    /// The transactions of the history.
    pub txns: Vec<Transaction>,
    /// The role of each transaction, parallel to `txns`.
    pub roles: Vec<GadgetRole>,
    /// The explicit session-order pairs (indices into `txns`).
    pub so_pairs: Vec<(TxnId, TxnId)>,
}

impl NonUniqueHistory {
    /// Number of transactions.
    pub fn len(&self) -> usize {
        self.txns.len()
    }

    /// True iff there are no transactions.
    pub fn is_empty(&self) -> bool {
        self.txns.is_empty()
    }

    /// The transaction playing `role`, if present.
    pub fn by_role(&self, role: GadgetRole) -> Option<&Transaction> {
        self.roles
            .iter()
            .position(|&r| r == role)
            .map(|i| &self.txns[i])
    }

    /// True iff some value is written by two different transactions on the
    /// same object (i.e. the unique-value convention is intentionally
    /// violated).
    pub fn has_duplicate_values(&self) -> bool {
        let mut seen: HashMap<(u64, u64), TxnId> = HashMap::new();
        for t in &self.txns {
            for op in &t.ops {
                if op.is_write() {
                    let k = (op.key().raw(), op.value().raw());
                    if let Some(&prev) = seen.get(&k) {
                        if prev != t.id {
                            return true;
                        }
                    } else {
                        seen.insert(k, t.id);
                    }
                }
            }
        }
        false
    }
}

/// Builds the history `hϕ` of Theorem 8 for the given CNF formula.
///
/// Objects are numbered as follows: object `k` (for `k < num_vars`) is the
/// anchor object of variable `k` read by `aₖ`/`bₖ`; objects
/// `num_vars + occurrence_index` are the per-literal objects `vᵢⱼ`.
pub fn reduce_to_history(cnf: &Cnf) -> NonUniqueHistory {
    let mut txns = Vec::new();
    let mut roles = Vec::new();
    let mut so_pairs = Vec::new();

    let push = |ops: Vec<Op>,
                role: GadgetRole,
                txns: &mut Vec<Transaction>,
                roles: &mut Vec<GadgetRole>|
     -> TxnId {
        let id = TxnId(txns.len() as u32);
        let mut t = Transaction::committed(id, SessionId(0), ops);
        t.status = TxnStatus::Committed;
        txns.push(t);
        roles.push(role);
        id
    };

    // Variable gadgets: aₖ and bₖ read the anchor object of their variable.
    let mut a_of = Vec::with_capacity(cnf.num_vars);
    let mut b_of = Vec::with_capacity(cnf.num_vars);
    for k in 0..cnf.num_vars {
        let anchor = k as u64;
        a_of.push(push(
            vec![Op::read(anchor, 0u64)],
            GadgetRole::A(k),
            &mut txns,
            &mut roles,
        ));
        b_of.push(push(
            vec![Op::read(anchor, 0u64)],
            GadgetRole::B(k),
            &mut txns,
            &mut roles,
        ));
    }

    // Literal gadgets.
    let mut occurrence = 0u64;
    for (i, clause) in cnf.clauses.iter().enumerate() {
        let mut clause_members: Vec<(TxnId, TxnId)> = Vec::new(); // (y, z) per literal
        for (j, lit) in clause.iter().enumerate() {
            let v_obj = cnf.num_vars as u64 + occurrence;
            occurrence += 1;
            // yᵢⱼ and zᵢⱼ both read value 0 of vᵢⱼ and write value 0 back —
            // deliberately identical, non-unique values.
            let y = push(
                vec![Op::read(v_obj, 0u64), Op::write(v_obj, 0u64)],
                GadgetRole::Y(i, j),
                &mut txns,
                &mut roles,
            );
            let z = push(
                vec![Op::read(v_obj, 0u64), Op::write(v_obj, 0u64)],
                GadgetRole::Z(i, j),
                &mut txns,
                &mut roles,
            );
            let w = push(
                vec![Op::read(v_obj, 0u64)],
                GadgetRole::W(i, j),
                &mut txns,
                &mut roles,
            );
            // Consistency sub-history (Figure 16): positive literals attach
            // y → aₖ and bₖ → w; negative literals swap aₖ and bₖ.
            if lit.positive {
                so_pairs.push((y, a_of[lit.var]));
                so_pairs.push((b_of[lit.var], w));
            } else {
                so_pairs.push((y, b_of[lit.var]));
                so_pairs.push((a_of[lit.var], w));
            }
            clause_members.push((y, z));
        }
        // Clause chain: zᵢⱼ → yᵢ,(j+1) mod mᵢ, so that an all-false clause
        // closes a commit-order cycle.
        let m = clause_members.len();
        for j in 0..m {
            let (_, z) = clause_members[j];
            let (y_next, _) = clause_members[(j + 1) % m];
            so_pairs.push((z, y_next));
        }
    }

    NonUniqueHistory {
        txns,
        roles,
        so_pairs,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mini::validate_transaction;

    fn sample_cnf() -> Cnf {
        // (x1 ∨ ¬x2) ∧ (x2 ∨ x3)
        Cnf::from_clauses(3, &[&[1, -2], &[2, 3]])
    }

    #[test]
    fn cnf_evaluation() {
        let cnf = sample_cnf();
        assert!(cnf.evaluate(&[true, false, true]));
        assert!(cnf.evaluate(&[true, true, false]));
        assert!(!cnf.evaluate(&[false, true, false]));
    }

    #[test]
    fn brute_force_sat_finds_models() {
        let cnf = sample_cnf();
        let model = cnf.is_satisfiable().expect("satisfiable");
        assert!(cnf.evaluate(&model));

        // x1 ∧ ¬x1 is unsatisfiable.
        let unsat = Cnf::from_clauses(1, &[&[1], &[-1]]);
        assert!(unsat.is_satisfiable().is_none());
    }

    #[test]
    fn reduction_size_is_linear() {
        let cnf = sample_cnf();
        let h = reduce_to_history(&cnf);
        // 2 transactions per variable + 3 per literal occurrence.
        assert_eq!(h.len(), 2 * cnf.num_vars + 3 * cnf.literal_count());
        // 2 SO pairs per literal + 1 chain pair per literal.
        assert_eq!(h.so_pairs.len(), 3 * cnf.literal_count());
    }

    #[test]
    fn reduction_transactions_are_mini_transactions() {
        let h = reduce_to_history(&sample_cnf());
        for t in &h.txns {
            assert!(validate_transaction(t).is_ok(), "{t:?} is not an MT");
        }
    }

    #[test]
    fn reduction_violates_unique_values_on_purpose() {
        let h = reduce_to_history(&sample_cnf());
        assert!(h.has_duplicate_values());
    }

    #[test]
    fn roles_are_addressable() {
        let h = reduce_to_history(&sample_cnf());
        assert!(h.by_role(GadgetRole::A(0)).is_some());
        assert!(h.by_role(GadgetRole::Y(1, 1)).is_some());
        assert!(h.by_role(GadgetRole::Y(5, 0)).is_none());
        assert!(!h.is_empty());
    }

    #[test]
    fn so_pairs_follow_literal_polarity() {
        let cnf = Cnf::from_clauses(1, &[&[1], &[-1]]);
        let h = reduce_to_history(&cnf);
        let a = h.by_role(GadgetRole::A(0)).unwrap().id;
        let b = h.by_role(GadgetRole::B(0)).unwrap().id;
        let y_pos = h.by_role(GadgetRole::Y(0, 0)).unwrap().id;
        let y_neg = h.by_role(GadgetRole::Y(1, 0)).unwrap().id;
        assert!(h.so_pairs.contains(&(y_pos, a)));
        assert!(h.so_pairs.contains(&(y_neg, b)));
    }

    #[test]
    #[should_panic(expected = "0 is not a valid literal")]
    fn zero_literal_rejected() {
        Cnf::from_clauses(1, &[&[0]]);
    }
}
