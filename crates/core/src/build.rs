//! `BUILDDEPENDENCY` (Algorithm 1 of the paper).
//!
//! Because every write in a mini-transaction history installs a unique value
//! and is preceded by a read of the same object, the dependency graph of the
//! history is (nearly) unique and can be constructed in a single pass:
//!
//! * the `WR` edges are entirely determined by the values read;
//! * the `WW` edges are inferred from the `WR` edges: if `S` reads `x` from
//!   `T` and also writes `x`, then `T` directly precedes `S` in the version
//!   order of `x`;
//! * the `RW` edges are derived from `WR` and `WW`.
//!
//! Two variants are provided: [`build_dependency_reference`] mirrors the
//! paper's Algorithm 1 literally, including the per-object transitive closure
//! of the `WW` edges (convenient for the correctness proof), while
//! [`build_dependency`] is the optimized version of Section IV-C that skips
//! the closure; Theorems 1 and 2 show both yield the same verdicts.

use crate::verdict::CheckError;
use mtc_history::{DependencyGraph, EdgeKind, History, Key, TxnId, INIT_VALUE};
use std::collections::HashMap;

/// Errors preventing the construction of a dependency graph.
pub type BuildError = CheckError;

/// Builds the dependency graph of a mini-transaction history *without*
/// computing the transitive closure of the `WW` edges (the optimized variant
/// of Section IV-C).
///
/// When `with_rt` is true, all `RT` edges between committed transactions are
/// materialized (`Θ(n²)` of them); this is only needed by the naive
/// `CHECKSSER`.
pub fn build_dependency(history: &History, with_rt: bool) -> Result<DependencyGraph, BuildError> {
    build_impl(history, with_rt, false)
}

/// Builds the dependency graph exactly as in Algorithm 1, including the
/// per-object transitive closure of the `WW` edges.
pub fn build_dependency_reference(
    history: &History,
    with_rt: bool,
) -> Result<DependencyGraph, BuildError> {
    build_impl(history, with_rt, true)
}

fn build_impl(
    history: &History,
    with_rt: bool,
    transitive_ww: bool,
) -> Result<DependencyGraph, BuildError> {
    let n = history.len();
    let mut g = DependencyGraph::new(n);
    let write_index = history.write_index();

    // RT edges (CHECKSSER only): all committed pairs ordered by wall clock.
    if with_rt {
        add_rt_edges(history, &mut g)?;
    }

    // SO edges: adjacent transactions of each session, plus ⊥T → first.
    for (a, b) in history.session_order_edges() {
        if history.txn(a).is_committed() && history.txn(b).is_committed() {
            g.add_edge(a, b, EdgeKind::So);
        }
    }

    // WR and (direct) WW edges, inferred from the values read.
    // Per (writer, key): the transactions that read this version, and the
    // transactions that read this version and overwrote it.
    #[allow(clippy::type_complexity)]
    let mut readers_of: HashMap<(TxnId, Key), (Vec<TxnId>, Vec<TxnId>)> = HashMap::new();

    for txn in history.committed() {
        if Some(txn.id) == history.init_txn() {
            continue;
        }
        for key in txn.key_set() {
            let Some(value) = txn.external_read(key) else {
                continue;
            };
            let writer = match write_index.get(&(key, value)) {
                Some(ws) => ws[0],
                None => {
                    if value == INIT_VALUE && !history.has_init() {
                        // Read of the implicit initial state: no dependency.
                        continue;
                    }
                    return Err(CheckError::UnreadableValue {
                        txn: txn.id,
                        key,
                        value,
                    });
                }
            };
            if writer == txn.id {
                // A transaction "reading from itself" externally is a
                // FUTUREREAD; the pre-scan reports it, we simply skip here.
                continue;
            }
            g.add_edge(writer, txn.id, EdgeKind::Wr(key));
            let entry = readers_of.entry((writer, key)).or_default();
            entry.0.push(txn.id);
            if txn.writes(key) {
                g.add_edge(writer, txn.id, EdgeKind::Ww(key));
                entry.1.push(txn.id);
            }
        }
    }

    // Optional per-object transitive closure of the WW edges (Algorithm 1
    // lines 12–13).
    if transitive_ww {
        add_ww_closure(history, &mut g);
    }

    // RW edges: T' -WR(x)-> T and T' -WW(x)-> S with T ≠ S give T -RW(x)-> S.
    // We iterate over the edge list snapshot so that, in the reference
    // variant, closure WW edges participate as well (yielding the
    // "derived" R̂W edges of Figure 6).
    let snapshot: Vec<(TxnId, TxnId, EdgeKind)> =
        g.edges().iter().map(|e| (e.from, e.to, e.kind)).collect();
    let mut wr_by_source: HashMap<(TxnId, Key), Vec<TxnId>> = HashMap::new();
    let mut ww_by_source: HashMap<(TxnId, Key), Vec<TxnId>> = HashMap::new();
    for &(from, to, kind) in &snapshot {
        match kind {
            EdgeKind::Wr(k) => wr_by_source.entry((from, k)).or_default().push(to),
            EdgeKind::Ww(k) => ww_by_source.entry((from, k)).or_default().push(to),
            _ => {}
        }
    }
    for ((source, key), readers) in &wr_by_source {
        if let Some(overwriters) = ww_by_source.get(&(*source, *key)) {
            for &reader in readers {
                for &overwriter in overwriters {
                    if reader != overwriter {
                        g.add_edge_dedup(reader, overwriter, EdgeKind::Rw(*key));
                    }
                }
            }
        }
    }

    Ok(g)
}

/// Materializes every RT edge between committed transactions (`Θ(n²)`).
///
/// Transactions without recorded begin/end instants simply contribute no RT
/// edges: for them the real-time order degenerates to the session order, as
/// permitted by Definition 2 (`SO ⊆ RT`).
fn add_rt_edges(history: &History, g: &mut DependencyGraph) -> Result<(), BuildError> {
    let committed: Vec<TxnId> = history.committed_ids().collect();
    for &a in &committed {
        let ta = history.txn(a);
        if ta.end.is_none() {
            continue;
        }
        for &b in &committed {
            // `a == b` is deliberately *not* skipped: a transaction whose
            // reported commit instant precedes its own begin (corrupt or
            // skewed clocks) makes RT non-irreflexive, so no strict
            // serialization exists. The self RT edge materializes that —
            // matching the time-chain encoding, where such an interval wraps
            // around the chain into a one-transaction cycle.
            if ta.precedes_in_real_time(history.txn(b)) {
                g.add_edge(a, b, EdgeKind::Rt);
            }
        }
    }
    Ok(())
}

/// Adds, for every object, the transitive closure of its direct WW edges.
fn add_ww_closure(history: &History, g: &mut DependencyGraph) {
    // Group direct WW edges by key.
    let mut per_key: HashMap<Key, Vec<(TxnId, TxnId)>> = HashMap::new();
    for e in g.edges() {
        if let EdgeKind::Ww(k) = e.kind {
            per_key.entry(k).or_default().push((e.from, e.to));
        }
    }
    for (key, edges) in per_key {
        // Build a local graph over the writers of this key.
        let mut nodes: Vec<TxnId> = Vec::new();
        let mut index_of: HashMap<TxnId, usize> = HashMap::new();
        let local_index = |t: TxnId, nodes: &mut Vec<TxnId>, map: &mut HashMap<TxnId, usize>| {
            *map.entry(t).or_insert_with(|| {
                nodes.push(t);
                nodes.len() - 1
            })
        };
        let mut local = Vec::new();
        for &(a, b) in &edges {
            let ia = local_index(a, &mut nodes, &mut index_of);
            let ib = local_index(b, &mut nodes, &mut index_of);
            local.push((ia, ib));
        }
        let mut lg = mtc_history::DiGraph::new(nodes.len());
        for (a, b) in local {
            lg.add_edge(a, b);
        }
        let all: Vec<usize> = (0..nodes.len()).collect();
        for (u, reach) in lg.closure_within(&all) {
            for v in reach {
                g.add_edge_dedup(nodes[u], nodes[v], EdgeKind::Ww(key));
            }
        }
    }
    let _ = history; // the closure only needs the edges already in `g`
}

#[cfg(test)]
mod tests {
    use super::*;
    use mtc_history::anomalies;
    use mtc_history::{HistoryBuilder, Op};

    /// Three serial updates of one key: ⊥T → T1 → T2 → T3.
    fn chain_history() -> History {
        let mut b = HistoryBuilder::new().with_init(1);
        b.committed(0, vec![Op::read(0u64, 0u64), Op::write(0u64, 1u64)]);
        b.committed(1, vec![Op::read(0u64, 1u64), Op::write(0u64, 2u64)]);
        b.committed(2, vec![Op::read(0u64, 2u64), Op::write(0u64, 3u64)]);
        b.build()
    }

    #[test]
    fn wr_and_ww_edges_follow_the_read_chain() {
        let h = chain_history();
        let g = build_dependency(&h, false).unwrap();
        let init = h.init_txn().unwrap();
        assert!(g.contains_edge(init, TxnId(1), EdgeKind::Wr(Key(0))));
        assert!(g.contains_edge(init, TxnId(1), EdgeKind::Ww(Key(0))));
        assert!(g.contains_edge(TxnId(1), TxnId(2), EdgeKind::Ww(Key(0))));
        assert!(g.contains_edge(TxnId(2), TxnId(3), EdgeKind::Ww(Key(0))));
        // No long-range WW edge without the closure…
        assert!(!g.contains_edge(init, TxnId(3), EdgeKind::Ww(Key(0))));
        // …but the reference variant adds it.
        let gr = build_dependency_reference(&h, false).unwrap();
        assert!(gr.contains_edge(init, TxnId(3), EdgeKind::Ww(Key(0))));
        assert!(gr.contains_edge(TxnId(1), TxnId(3), EdgeKind::Ww(Key(0))));
    }

    #[test]
    fn rw_edges_are_derived() {
        // T1 installs 1; T2 reads 1 (no write); T3 reads 1 and overwrites.
        let mut b = HistoryBuilder::new().with_init(1);
        b.committed(0, vec![Op::read(0u64, 0u64), Op::write(0u64, 1u64)]);
        b.committed(1, vec![Op::read(0u64, 1u64)]);
        b.committed(2, vec![Op::read(0u64, 1u64), Op::write(0u64, 2u64)]);
        let h = b.build();
        let g = build_dependency(&h, false).unwrap();
        // T2 read the version T3 overwrote: T2 -RW-> T3.
        assert!(g.contains_edge(TxnId(2), TxnId(3), EdgeKind::Rw(Key(0))));
        // A transaction never anti-depends on itself.
        assert!(!g.contains_edge(TxnId(3), TxnId(3), EdgeKind::Rw(Key(0))));
    }

    #[test]
    fn so_edges_connect_adjacent_session_transactions() {
        let h = chain_history();
        let g = build_dependency(&h, false).unwrap();
        let init = h.init_txn().unwrap();
        for t in [TxnId(1), TxnId(2), TxnId(3)] {
            assert!(g.contains_edge(init, t, EdgeKind::So));
        }
    }

    #[test]
    fn rt_edges_degrade_gracefully_without_timestamps() {
        let h = chain_history(); // no timestamps on user transactions
        let g = build_dependency(&h, true).unwrap();
        // ⊥T carries instants (0,0) but the user transactions do not, so no
        // RT edge connects two user transactions.
        for e in g.edges() {
            if e.kind == EdgeKind::Rt {
                assert_eq!(e.from, h.init_txn().unwrap());
            }
        }
    }

    #[test]
    fn rt_edges_added_for_timed_histories() {
        let mut b = HistoryBuilder::new().with_init(1);
        b.committed_timed(0, vec![Op::read(0u64, 0u64), Op::write(0u64, 1u64)], 10, 20);
        b.committed_timed(1, vec![Op::read(0u64, 1u64), Op::write(0u64, 2u64)], 30, 40);
        let h = b.build();
        let g = build_dependency(&h, true).unwrap();
        assert!(g.contains_edge(TxnId(1), TxnId(2), EdgeKind::Rt));
        assert!(!g.contains_edge(TxnId(2), TxnId(1), EdgeKind::Rt));
        // ⊥T (committed at instant 0) precedes both in real time.
        let init = h.init_txn().unwrap();
        assert!(g.contains_edge(init, TxnId(1), EdgeKind::Rt));
    }

    #[test]
    fn unreadable_value_is_reported() {
        let mut b = HistoryBuilder::new().with_init(1);
        b.committed(0, vec![Op::read(0u64, 77u64)]);
        let h = b.build();
        assert!(matches!(
            build_dependency(&h, false),
            Err(CheckError::UnreadableValue { .. })
        ));
    }

    #[test]
    fn aborted_transactions_contribute_no_edges() {
        let mut b = HistoryBuilder::new().with_init(1);
        b.committed(0, vec![Op::read(0u64, 0u64), Op::write(0u64, 1u64)]);
        b.aborted(1, vec![Op::read(0u64, 1u64), Op::write(0u64, 2u64)]);
        let h = b.build();
        let g = build_dependency(&h, false).unwrap();
        assert!(g.out_edges(TxnId(2)).next().is_none());
        assert!(!g.contains_any_edge(TxnId(1), TxnId(2)));
    }

    #[test]
    #[allow(clippy::explicit_counter_loop)] // `val` is state, not a counter
    fn edge_budget_is_linear_for_mt_histories() {
        // Each mini-transaction contributes O(1) SO/WR/WW/RW edges.
        let mut b = HistoryBuilder::new().with_init(4);
        let mut val = 1u64;
        let mut last = [0u64; 4];
        for i in 0..200u64 {
            let k = i % 4;
            b.committed(
                (i % 8) as u32,
                vec![Op::read(k, last[k as usize]), Op::write(k, val)],
            );
            last[k as usize] = val;
            val += 1;
        }
        let h = b.build();
        let g = build_dependency(&h, false).unwrap();
        let n = h.committed_count();
        assert!(
            g.edge_count() <= 8 * n,
            "expected O(n) edges, got {} for n = {n}",
            g.edge_count()
        );
    }

    #[test]
    fn divergence_pattern_produces_rw_cycle() {
        let h = anomalies::divergence();
        let g = build_dependency(&h, false).unwrap();
        // T2 and T3 each anti-depend on the other (Example 1 / Figure 3).
        assert!(g.contains_edge(TxnId(2), TxnId(3), EdgeKind::Rw(Key(0))));
        assert!(g.contains_edge(TxnId(3), TxnId(2), EdgeKind::Rw(Key(0))));
    }

    #[test]
    fn reference_and_optimized_graphs_agree_on_acyclicity() {
        for (kind, h) in anomalies::catalogue() {
            if kind.is_intra() {
                continue; // graphs of intra-anomalous histories are not meaningful
            }
            let a = build_dependency(&h, false).unwrap();
            let b = build_dependency_reference(&h, false).unwrap();
            assert_eq!(
                a.is_acyclic(|_| true),
                b.is_acyclic(|_| true),
                "Theorem 1 violated for {kind}"
            );
        }
    }
}
