//! `VL-LWT`: linearizability of lightweight-transaction histories
//! (Algorithm 2, Section IV-E of the paper).
//!
//! A lightweight transaction (LWT) is a single `read&write`
//! (Compare-And-Set) or `insert-if-not-exists` invocation on one object.
//! When each transaction is a single operation, strict serializability
//! degenerates to linearizability, and linearizability is *local*: a history
//! is linearizable iff each per-object sub-history is. For each object the
//! algorithm:
//!
//! 1. requires exactly one insert-if-not-exists (the initial version);
//! 2. arranges the `read&write` operations into a chain where each operation
//!    reads the value installed by its predecessor — with unique values the
//!    chain is unique and found in expected `O(n)` time via a hash map;
//! 3. walks the chain *backwards* keeping the minimum finish time seen, and
//!    rejects as soon as an operation starts after that minimum — the
//!    real-time requirement.

use crate::verdict::LwtViolation;
use crate::verdict::{CheckError, Verdict, Violation};
use mtc_history::{Key, LwtKind, TimedOp, Value};
use std::collections::HashMap;

/// Errors that make a lightweight-transaction history unverifiable (as
/// opposed to non-linearizable).
pub type LwtError = CheckError;

/// Checks linearizability of a complete LWT history (operations on any
/// number of objects). The history is partitioned per object (locality of
/// linearizability) and [`check_linearizability_single_key`] is applied to
/// each partition.
pub fn check_linearizability(ops: &[TimedOp]) -> Result<Verdict, LwtError> {
    let mut per_key: HashMap<Key, Vec<TimedOp>> = HashMap::new();
    for op in ops {
        per_key.entry(op.key).or_default().push(*op);
    }
    let mut keys: Vec<Key> = per_key.keys().copied().collect();
    keys.sort_unstable();
    for key in keys {
        let verdict = check_linearizability_single_key(&per_key[&key])?;
        if verdict.is_violated() {
            return Ok(verdict);
        }
    }
    Ok(Verdict::Satisfied)
}

/// Algorithm 2 (`VL-LWT`) on the sub-history of a single object.
///
/// The input must be non-empty and contain only operations on one key;
/// plain-read operations are not part of Algorithm 2's input model and are
/// rejected with [`CheckError::UnsupportedLwtOp`].
pub fn check_linearizability_single_key(ops: &[TimedOp]) -> Result<Verdict, LwtError> {
    assert!(!ops.is_empty(), "the per-object history must be non-empty");
    let key = ops[0].key;
    debug_assert!(ops.iter().all(|o| o.key == key));

    // ── Validity: exactly one insert-if-not-exists. ────────────────────────
    let inserts: Vec<&TimedOp> = ops
        .iter()
        .filter(|o| matches!(o.kind, LwtKind::Insert { .. }))
        .collect();
    if inserts.len() != 1 {
        return Ok(Verdict::Violated(Violation::Lwt(
            LwtViolation::BadInsertCount {
                key,
                count: inserts.len(),
            },
        )));
    }
    let insert = *inserts[0];

    // ── Step ❶: construct the read-from chain. ─────────────────────────────
    // Index the read&write operations by the value they expect. With unique
    // values each expected value has at most one candidate, so the chain is
    // built in expected O(n).
    let mut by_expected: HashMap<Value, Vec<usize>> = HashMap::new();
    for (i, op) in ops.iter().enumerate() {
        match op.kind {
            LwtKind::ReadWrite { expected, .. } => {
                by_expected.entry(expected).or_default().push(i);
            }
            LwtKind::Insert { .. } => {}
            LwtKind::Read { .. } => {
                return Err(CheckError::UnsupportedLwtOp { key });
            }
        }
    }

    let rw_count = ops.len() - 1;
    let mut chain: Vec<TimedOp> = Vec::with_capacity(ops.len());
    chain.push(insert);
    let mut current = insert.written_value().expect("insert writes a value");
    for _ in 0..rw_count {
        let candidates = by_expected.get(&current).map(Vec::as_slice).unwrap_or(&[]);
        if candidates.len() != 1 {
            return Ok(Verdict::Violated(Violation::Lwt(
                LwtViolation::BrokenChain {
                    key,
                    value: current,
                    candidates: candidates.len(),
                },
            )));
        }
        let op = ops[candidates[0]];
        current = match op.kind {
            LwtKind::ReadWrite { new, .. } => new,
            _ => unreachable!("only read&write operations are indexed"),
        };
        chain.push(op);
    }

    // ── Step ❷: the real-time requirement, in one backward pass. ──────────
    let mut min_finish = u64::MAX;
    for (idx, op) in chain.iter().enumerate().rev() {
        if op.start > min_finish {
            return Ok(Verdict::Violated(Violation::Lwt(LwtViolation::RealTime {
                key,
                chain_index: idx,
                start: op.start,
                min_later_finish: min_finish,
            })));
        }
        min_finish = min_finish.min(op.finish);
    }

    Ok(Verdict::Satisfied)
}

#[cfg(test)]
mod tests {
    use super::*;

    const X: u64 = 0;
    const Y: u64 = 1;

    /// The linearizable history of Figure 4a: O1 = R&W(x,0,1) [3,6],
    /// O2 = R&W(x,1,2) [1,4], O3 = R&W(x,2,3) [5,8], initial value 0.
    fn figure_4a() -> Vec<TimedOp> {
        vec![
            TimedOp::insert(0, 0, X, 0u64),
            TimedOp::read_write(3, 6, X, 0u64, 1u64),
            TimedOp::read_write(1, 4, X, 1u64, 2u64),
            TimedOp::read_write(5, 8, X, 2u64, 3u64),
        ]
    }

    /// The non-linearizable history of Figure 4b: O1 = R&W(x,0,1) [6,9],
    /// O2 = R&W(x,1,2) [1,4], O3 = R&W(x,2,3) [5,8].
    fn figure_4b() -> Vec<TimedOp> {
        vec![
            TimedOp::insert(0, 0, X, 0u64),
            TimedOp::read_write(6, 9, X, 0u64, 1u64),
            TimedOp::read_write(1, 4, X, 1u64, 2u64),
            TimedOp::read_write(5, 8, X, 2u64, 3u64),
        ]
    }

    #[test]
    fn figure_4a_is_linearizable() {
        assert_eq!(
            check_linearizability(&figure_4a()).unwrap(),
            Verdict::Satisfied
        );
    }

    #[test]
    fn figure_4b_is_not_linearizable() {
        let verdict = check_linearizability(&figure_4b()).unwrap();
        let Some(Violation::Lwt(LwtViolation::RealTime { key, .. })) = verdict.violation() else {
            panic!("expected a real-time violation, got {verdict:?}");
        };
        assert_eq!(*key, Key(X));
    }

    #[test]
    fn missing_insert_is_invalid() {
        let ops = vec![TimedOp::read_write(0, 1, X, 0u64, 1u64)];
        let verdict = check_linearizability(&ops).unwrap();
        assert!(matches!(
            verdict.violation(),
            Some(Violation::Lwt(LwtViolation::BadInsertCount {
                count: 0,
                ..
            }))
        ));
    }

    #[test]
    fn duplicate_insert_is_invalid() {
        let ops = vec![
            TimedOp::insert(0, 1, X, 0u64),
            TimedOp::insert(2, 3, X, 5u64),
        ];
        let verdict = check_linearizability(&ops).unwrap();
        assert!(matches!(
            verdict.violation(),
            Some(Violation::Lwt(LwtViolation::BadInsertCount {
                count: 2,
                ..
            }))
        ));
    }

    #[test]
    fn broken_chain_when_a_value_is_never_produced() {
        let ops = vec![
            TimedOp::insert(0, 1, X, 0u64),
            // expects value 7, which nobody wrote
            TimedOp::read_write(2, 3, X, 7u64, 8u64),
        ];
        let verdict = check_linearizability(&ops).unwrap();
        assert!(matches!(
            verdict.violation(),
            Some(Violation::Lwt(LwtViolation::BrokenChain {
                candidates: 0,
                ..
            }))
        ));
    }

    #[test]
    fn broken_chain_when_two_ops_expect_the_same_value() {
        let ops = vec![
            TimedOp::insert(0, 1, X, 0u64),
            TimedOp::read_write(2, 3, X, 0u64, 1u64),
            TimedOp::read_write(4, 5, X, 0u64, 2u64),
        ];
        let verdict = check_linearizability(&ops).unwrap();
        assert!(matches!(
            verdict.violation(),
            Some(Violation::Lwt(LwtViolation::BrokenChain {
                candidates: 2,
                ..
            }))
        ));
    }

    #[test]
    fn plain_reads_are_not_supported_by_algorithm_2() {
        let ops = vec![TimedOp::insert(0, 1, X, 0u64), TimedOp::read(2, 3, X, 0u64)];
        assert!(matches!(
            check_linearizability(&ops),
            Err(CheckError::UnsupportedLwtOp { .. })
        ));
    }

    #[test]
    fn sequential_chain_is_linearizable() {
        let mut ops = vec![TimedOp::insert(0, 1, X, 0u64)];
        for i in 0..100u64 {
            ops.push(TimedOp::read_write(2 + 2 * i, 3 + 2 * i, X, i, i + 1));
        }
        assert_eq!(check_linearizability(&ops).unwrap(), Verdict::Satisfied);
    }

    #[test]
    fn concurrent_overlapping_chain_is_linearizable() {
        // Chain order O1 → O2 → O3 with heavily overlapping intervals is
        // still fine: no operation starts after a later one finished.
        let ops = vec![
            TimedOp::insert(0, 0, X, 0u64),
            TimedOp::read_write(1, 10, X, 0u64, 1u64),
            TimedOp::read_write(2, 9, X, 1u64, 2u64),
            TimedOp::read_write(3, 8, X, 2u64, 3u64),
        ];
        assert_eq!(check_linearizability(&ops).unwrap(), Verdict::Satisfied);
    }

    #[test]
    fn locality_checks_each_object_separately() {
        // Key X is fine; key Y has a real-time violation.
        let ops = vec![
            TimedOp::insert(0, 0, X, 0u64),
            TimedOp::read_write(1, 2, X, 0u64, 1u64),
            TimedOp::insert(0, 0, Y, 0u64),
            TimedOp::read_write(10, 12, Y, 0u64, 1u64),
            TimedOp::read_write(1, 4, Y, 1u64, 2u64), // starts before its predecessor
        ];
        let verdict = check_linearizability(&ops).unwrap();
        let Some(Violation::Lwt(LwtViolation::RealTime { key, .. })) = verdict.violation() else {
            panic!("expected real-time violation, got {verdict:?}");
        };
        assert_eq!(*key, Key(Y));
    }

    #[test]
    fn single_insert_only_history_is_linearizable() {
        let ops = vec![TimedOp::insert(5, 9, X, 0u64)];
        assert_eq!(check_linearizability(&ops).unwrap(), Verdict::Satisfied);
    }
}
