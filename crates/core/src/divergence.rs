//! The DIVERGENCE pattern (Definition 10 of the paper).
//!
//! A history contains a DIVERGENCE when two transactions read *the same
//! value* of an object from a third transaction and then both write
//! (different, by the unique-value convention) values to that object. As
//! proved in Lemma 1 and illustrated in Figure 3, any such pattern refutes
//! snapshot isolation regardless of how the write-write order is chosen —
//! which is why `CHECKSI` looks for it before any graph construction.

use crate::verdict::Violation;
use mtc_history::{History, Key, TxnId, Value};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// A concrete DIVERGENCE occurrence.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Divergence {
    /// Object concerned.
    pub key: Key,
    /// The value both readers observed.
    pub value: Value,
    /// The transaction that wrote `value` (None when the value is the
    /// initial value of a history without `⊥T`).
    pub writer: Option<TxnId>,
    /// First reader-then-writer.
    pub reader1: TxnId,
    /// Second reader-then-writer.
    pub reader2: TxnId,
}

impl Divergence {
    /// Converts the pattern into a [`Violation`].
    pub fn into_violation(self) -> Violation {
        Violation::Divergence {
            key: self.key,
            value: self.value,
            writer: self.writer,
            reader1: self.reader1,
            reader2: self.reader2,
        }
    }
}

/// Scans a history for the DIVERGENCE pattern.
///
/// Runs in `O(total number of operations)`: committed transactions are
/// bucketed by the `(key, value)` they read externally and also write.
pub fn find_divergence(history: &History) -> Option<Divergence> {
    let write_index = history.write_index();
    // (key, value read) -> first transaction seen that read it and writes key
    let mut first_reader_writer: HashMap<(Key, Value), TxnId> = HashMap::new();

    for txn in history.committed() {
        if Some(txn.id) == history.init_txn() {
            continue;
        }
        for key in txn.write_set() {
            let Some(read_value) = txn.external_read(key) else {
                continue;
            };
            match first_reader_writer.get(&(key, read_value)) {
                None => {
                    first_reader_writer.insert((key, read_value), txn.id);
                }
                Some(&other) if other != txn.id => {
                    let writer = write_index
                        .get(&(key, read_value))
                        .and_then(|ws| ws.first())
                        .copied();
                    return Some(Divergence {
                        key,
                        value: read_value,
                        writer,
                        reader1: other,
                        reader2: txn.id,
                    });
                }
                Some(_) => {}
            }
        }
    }
    None
}

/// Finds *all* DIVERGENCE occurrences (one per `(key, value)` group with two
/// or more diverging readers). Useful for reporting and for the workload
/// effectiveness experiments that count distinct anomalies.
pub fn find_all_divergences(history: &History) -> Vec<Divergence> {
    let write_index = history.write_index();
    let mut groups: HashMap<(Key, Value), Vec<TxnId>> = HashMap::new();
    for txn in history.committed() {
        if Some(txn.id) == history.init_txn() {
            continue;
        }
        for key in txn.write_set() {
            if let Some(read_value) = txn.external_read(key) {
                groups.entry((key, read_value)).or_default().push(txn.id);
            }
        }
    }
    let mut out = Vec::new();
    for ((key, value), readers) in groups {
        if readers.len() >= 2 {
            let writer = write_index
                .get(&(key, value))
                .and_then(|ws| ws.first())
                .copied();
            out.push(Divergence {
                key,
                value,
                writer,
                reader1: readers[0],
                reader2: readers[1],
            });
        }
    }
    out.sort_by_key(|d| (d.key, d.value));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use mtc_history::anomalies;
    use mtc_history::{HistoryBuilder, Op};

    #[test]
    fn figure3_divergence_is_found() {
        let h = anomalies::divergence();
        let d = find_divergence(&h).expect("divergence must be found");
        assert_eq!(d.key, Key(0));
        assert_eq!(d.value, Value(1));
        assert_ne!(d.reader1, d.reader2);
        assert_eq!(d.writer, Some(TxnId(1)));
    }

    #[test]
    fn lost_update_is_a_divergence() {
        let h = anomalies::lost_update();
        assert!(find_divergence(&h).is_some());
    }

    #[test]
    fn write_skew_is_not_a_divergence() {
        let h = anomalies::write_skew();
        assert!(find_divergence(&h).is_none());
    }

    #[test]
    fn long_fork_is_not_a_divergence() {
        let h = anomalies::long_fork();
        assert!(find_divergence(&h).is_none());
    }

    #[test]
    fn serial_updates_are_not_divergent() {
        let mut b = HistoryBuilder::new().with_init(1);
        b.committed(0, vec![Op::read(0u64, 0u64), Op::write(0u64, 1u64)]);
        b.committed(1, vec![Op::read(0u64, 1u64), Op::write(0u64, 2u64)]);
        b.committed(0, vec![Op::read(0u64, 2u64), Op::write(0u64, 3u64)]);
        let h = b.build();
        assert!(find_divergence(&h).is_none());
        assert!(find_all_divergences(&h).is_empty());
    }

    #[test]
    fn readers_that_do_not_write_are_ignored() {
        let mut b = HistoryBuilder::new().with_init(1);
        b.committed(0, vec![Op::read(0u64, 0u64), Op::write(0u64, 1u64)]);
        // Two pure readers of the same value: fine under SI.
        b.committed(1, vec![Op::read(0u64, 1u64)]);
        b.committed(2, vec![Op::read(0u64, 1u64)]);
        let h = b.build();
        assert!(find_divergence(&h).is_none());
    }

    #[test]
    fn divergence_on_the_initial_value() {
        let mut b = HistoryBuilder::new().with_init(1);
        b.committed(0, vec![Op::read(0u64, 0u64), Op::write(0u64, 1u64)]);
        b.committed(1, vec![Op::read(0u64, 0u64), Op::write(0u64, 2u64)]);
        let h = b.build();
        let d = find_divergence(&h).unwrap();
        assert_eq!(d.writer, Some(h.init_txn().unwrap()));
    }

    #[test]
    fn aborted_transactions_do_not_cause_divergence() {
        let mut b = HistoryBuilder::new().with_init(1);
        b.committed(0, vec![Op::read(0u64, 0u64), Op::write(0u64, 1u64)]);
        b.aborted(1, vec![Op::read(0u64, 0u64), Op::write(0u64, 2u64)]);
        let h = b.build();
        assert!(find_divergence(&h).is_none());
    }

    #[test]
    fn all_divergences_reports_each_group_once() {
        let mut b = HistoryBuilder::new().with_init(2);
        // divergence on key 0 ...
        b.committed(0, vec![Op::read(0u64, 0u64), Op::write(0u64, 1u64)]);
        b.committed(1, vec![Op::read(0u64, 0u64), Op::write(0u64, 2u64)]);
        // ... and on key 1
        b.committed(2, vec![Op::read(1u64, 0u64), Op::write(1u64, 3u64)]);
        b.committed(3, vec![Op::read(1u64, 0u64), Op::write(1u64, 4u64)]);
        let h = b.build();
        let all = find_all_divergences(&h);
        assert_eq!(all.len(), 2);
        assert_eq!(all[0].key, Key(0));
        assert_eq!(all[1].key, Key(1));
    }
}
