//! Streaming verification: incremental SER/SI/SSER checking of
//! mini-transaction histories, one committed transaction at a time.
//!
//! The batch verifiers of [`crate::check`] need the whole history before they
//! answer. Yet the property that makes MT histories attractive — the
//! dependency graph is unique and grows by `O(1)` edges per transaction — is
//! exactly what makes *online* checking feasible: as each transaction
//! commits, its edges are derived from per-key indexes and inserted into an
//! incrementally maintained topological order
//! ([`mtc_history::IncrementalTopo`], Pearce–Kelly style). A violation is
//! reported the moment the offending transaction is consumed instead of
//! after the run ends, and the amortized cost per transaction is `O(1)` for
//! histories fed in commit order.
//!
//! Two drivers share the same derivation code:
//!
//! * [`IncrementalChecker`] — consumes transactions one by one on the caller
//!   thread;
//! * [`ShardedIncrementalChecker`] — partitions per-key edge derivation
//!   across worker threads by key (`hash(key) mod shards`) and merges the
//!   resulting edge events into the shared topological order in a canonical
//!   deterministic order, so its verdicts are identical to the sequential
//!   checker's by construction.
//!
//! ## Strict serializability and the online time-chain
//!
//! Strict serializability adds the real-time order to the mix: a dependency
//! path must never run from a transaction back to one that *finished before
//! it began*. The batch [`crate::check_sser`] encodes this by sorting every
//! begin/commit instant once and threading them into a chain of time nodes.
//! The streaming engine keeps the same encoding **online** via
//! [`mtc_history::TimeChain`]: instants are spliced into the maintained
//! topological order as they arrive (out-of-order instants included — a
//! commit acknowledged now may report a begin far in the past), each
//! committed transaction is hooked in with `begin-node(begin) → txn` and
//! `txn → end-node(end)` edges, and a real-time-order violation latches the
//! moment a dependency edge contradicts the chain. Use
//! [`IncrementalSserChecker`] (or `IncrementalChecker::new_sser()` plus the
//! `*_timed` push methods) for the sequential driver; the sharded checker
//! accepts [`IsolationLevel::StrictSerializability`] too and reuses the same
//! worker pool — time-chain maintenance stays on the merge thread, so the
//! workers are oblivious to timestamps.
//!
//! ## Equivalence with the batch checkers
//!
//! On any completed stream, [`IncrementalChecker::finish`] agrees with
//! [`crate::check_ser`] / [`crate::check_si`] / [`crate::check_sser`] on
//! accept/reject. Violation payloads coincide up to the inherent reordering
//! of online reporting:
//!
//! * intra-transactional anomalies local to one transaction (`INT`
//!   violations, `FUTUREREAD`) are reported at that transaction;
//! * read-provenance anomalies that batch mode classifies with the *whole*
//!   history in hand (`THINAIRREAD`, `ABORTEDREAD`, `INTERMEDIATEREAD`) stay
//!   *pending* while a future writer could still legitimize the read and are
//!   settled at the latest by `finish()`;
//! * cycles are reported when the closing edge arrives, with the same
//!   labelling rules as the batch counterexamples;
//! * the DIVERGENCE pattern is checked before the edges of each transaction,
//!   mirroring `CHECKSI`'s early exit.
//!
//! Because a violation is latched as soon as it is *provable from the
//! prefix*, a corrupted transaction in the middle of a long run is reported
//! without consuming the tail — the "time-to-first-violation" metric
//! reported by `mtc-runner`'s streaming mode.

use crate::check::{CheckOptions, IsolationLevel};
use crate::divergence::Divergence;
use crate::mini::{validate_transaction, MtViolation};
use crate::verdict::{CheckError, Verdict, Violation};
use mtc_history::{
    DependencyGraph, Edge, EdgeKind, FastHashMap, FastHashSet, IncrementalTopo, IntraAnomaly,
    IntraViolation, Key, Op, Role, SessionId, TimeChain, TimeSlot, Transaction, TxnId, TxnStatus,
    Value, INIT_VALUE,
};
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, HashMap, HashSet};

pub mod tune;

// ───────────────────────── events ───────────────────────────────────────────

/// Sub-pass indices fixing the canonical order of events within one
/// transaction (mirroring the batch pipeline: validation, pre-scan,
/// divergence, graph construction).
const PASS_ERROR: u8 = 0;
const PASS_INTRA: u8 = 1;
const PASS_DIVERGENCE: u8 = 2;
const PASS_EDGES: u8 = 3;
/// Ablation mode (`skip_divergence_early_exit`): the divergence scan still
/// runs, but its events sort *after* the transaction's edges — mirroring the
/// batch `CHECKSI`, which always re-checks divergence because the composed
/// graph can mask the RW 2-cycle a DIVERGENCE induces.
const PASS_LATE_DIVERGENCE: u8 = 4;

/// One derived consequence of consuming a transaction.
#[derive(Clone, Debug)]
enum Event {
    /// The input left the checker's domain (malformed MT, duplicate value).
    Error(CheckError),
    /// An intra-transactional / read-provenance anomaly became provable.
    Intra(IntraViolation),
    /// The DIVERGENCE pattern completed (SI only).
    Divergence(Divergence),
    /// A dependency edge; `dedup` requests add-if-absent semantics (RW).
    Edge {
        from: TxnId,
        to: TxnId,
        kind: EdgeKind,
        dedup: bool,
    },
    /// The transaction's begin/commit instants (SSER only): hooks the
    /// transaction into the online time-chain. Either side may be absent —
    /// a partially timed transaction still constrains the real-time order
    /// on the side it has, matching the naive RT materialization.
    TimeBounds {
        begin: Option<u64>,
        end: Option<u64>,
    },
}

/// An event tagged with its canonical position within the transaction.
#[derive(Clone, Debug)]
struct TaggedEvent {
    pass: u8,
    key_rank: u32,
    seq: u32,
    event: Event,
}

// ───────────────────────── per-key state ────────────────────────────────────

/// Everything ever written as `(key, value)`, as far as the stream has been
/// consumed. Mirrors the roles of `History::write_index` /
/// `History::any_write_index` in batch mode.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
struct WriteReg {
    /// First committed transaction whose *last* write of the key installed
    /// the value (the version the WR relation points at).
    committed_last: Option<TxnId>,
    /// A committed transaction wrote the value but overwrote it before
    /// committing (`INTERMEDIATEREAD` witness).
    committed_intermediate: Option<TxnId>,
    /// A non-committed (aborted/unknown) transaction wrote the value
    /// (`ABORTEDREAD` candidate).
    non_committed: Option<TxnId>,
    /// First committed writer of the value, intermediate or not (duplicate
    /// detection, Definition 9).
    first_committed_any: Option<TxnId>,
    /// Most recent transaction that registered or read this version —
    /// the staleness clock of the settled-prefix GC.
    last_touch: TxnId,
}

/// An external read whose provenance cannot be classified yet.
#[derive(Clone, Debug, Serialize, Deserialize)]
struct PendingRead {
    txn: TxnId,
    op_index: usize,
    key: Key,
    value: Value,
    /// The reader itself writes this very value later in its own program
    /// order (`FUTUREREAD` if nobody else ever installs it).
    future_candidate: bool,
    /// The reader also writes the key (so a resolution adds a WW edge).
    writes_key: bool,
}

/// The key-partitioned indexes of the streaming checker. A sharded checker
/// owns one `KeyState` per shard; the sequential checker owns exactly one.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
struct KeyState {
    /// Provenance of every value seen so far, per key.
    writes: FastHashMap<(Key, Value), WriteReg>,
    /// Per `(writer, key)`: transactions that read this version, and those
    /// that read it and overwrote it (RW derivation, Algorithm 1).
    readers_of: FastHashMap<(TxnId, Key), (Vec<TxnId>, Vec<TxnId>)>,
    /// Per `(key, value)`: first committed reader-writer (DIVERGENCE scan).
    first_reader_writer: FastHashMap<(Key, Value), TxnId>,
    /// Reads waiting for their writer to appear in the stream.
    pending: FastHashMap<(Key, Value), Vec<PendingRead>>,
    /// Value installed by the *newest* committed last-write per key — the
    /// version a well-behaved new reader is expected to observe. Stale
    /// versions (anything else, once old enough) are GC candidates.
    latest: FastHashMap<Key, Value>,
    /// Value of the version `(writer, key)` points at in `readers_of` —
    /// the reverse index the GC uses to retire `readers_of` entries
    /// together with their version.
    version_of: FastHashMap<(TxnId, Key), Value>,
    /// Explicit eviction markers: per `(writer, key)` version, how many
    /// reader entries the GC's reader-list cap has dropped (see
    /// [`GcPolicy`]'s reader-cap contract). Empty unless a cap is set.
    evicted: FastHashMap<(TxnId, Key), u64>,
}

/// The per-key slice of one transaction, precomputed once by the coordinator
/// so shard workers never touch the full op list.
#[derive(Clone, Debug)]
struct KeyWork {
    key: Key,
    /// Rank of the key in the transaction's `key_set` order.
    key_rank: u32,
    /// Rank of the key in the transaction's `write_set` order (`u32::MAX`
    /// when the key is not written) — fixes the divergence-check order.
    write_rank: u32,
    /// The external read of the key, with its op index.
    external_read: Option<(Value, usize)>,
    /// Every write of the key, in program order, with "is last write" flags.
    writes: Vec<(Value, bool)>,
    /// True iff the transaction writes the key.
    writes_key: bool,
    /// True iff the external read returns a value the transaction itself
    /// installs later (FUTUREREAD candidate).
    future_candidate: bool,
}

/// A transaction decomposed for shard processing.
#[derive(Clone, Debug)]
struct TxnWork {
    id: TxnId,
    status: TxnStatus,
    is_init: bool,
    per_key: Vec<KeyWork>,
}

fn decompose(txn: &Transaction, is_init: bool) -> TxnWork {
    let key_set = txn.key_set();
    let write_set = txn.write_set();
    let per_key = key_set
        .iter()
        .enumerate()
        .map(|(rank, &key)| {
            let external_read = txn.ops.iter().enumerate().find_map(|(i, op)| match *op {
                Op::Write { key: k, .. } if k == key => Some(None),
                Op::Read { key: k, value } if k == key => Some(Some((value, i))),
                _ => None,
            });
            let external_read = external_read.flatten();
            let writes: Vec<(Value, bool)> = {
                let last = txn.last_write(key);
                txn.ops
                    .iter()
                    .filter_map(|op| match *op {
                        Op::Write { key: k, value } if k == key => {
                            Some((value, Some(value) == last))
                        }
                        _ => None,
                    })
                    .collect()
            };
            let future_candidate = match external_read {
                Some((v, i)) => txn.ops[i + 1..]
                    .iter()
                    .any(|op| matches!(*op, Op::Write { key: k, value } if k == key && value == v)),
                None => false,
            };
            KeyWork {
                key,
                key_rank: rank as u32,
                write_rank: write_set
                    .iter()
                    .position(|&k| k == key)
                    .map(|p| p as u32)
                    .unwrap_or(u32::MAX),
                external_read,
                writes_key: !writes.is_empty(),
                writes,
                future_candidate,
            }
        })
        .collect();
    TxnWork {
        id: txn.id,
        status: txn.status,
        is_init,
        per_key,
    }
}

impl KeyState {
    /// Processes the slice of `txn` whose keys this state owns, appending
    /// tagged events. `divergence_pass` enables the SI-only DIVERGENCE scan
    /// and fixes where its events sort ([`PASS_DIVERGENCE`] normally,
    /// [`PASS_LATE_DIVERGENCE`] in ablation mode).
    #[allow(clippy::too_many_arguments)]
    fn derive(
        &mut self,
        txn: &TxnWork,
        owned: impl Fn(Key) -> bool,
        divergence_pass: Option<u8>,
        has_init: bool,
        validate_mt: bool,
        prescan: bool,
        out: &mut Vec<TaggedEvent>,
    ) {
        let committed = txn.status == TxnStatus::Committed;
        let mut seq = 0u32;
        let mut push = |out: &mut Vec<TaggedEvent>, pass: u8, key_rank: u32, event: Event| {
            out.push(TaggedEvent {
                pass,
                key_rank,
                seq,
                event,
            });
            seq += 1;
        };

        // ── register writes (duplicate detection + pending resolution) ──
        for work in txn.per_key.iter().filter(|w| owned(w.key)) {
            for &(value, is_last) in &work.writes {
                let reg = self.writes.entry((work.key, value)).or_default();
                reg.last_touch = reg.last_touch.max(txn.id);
                if committed {
                    if validate_mt {
                        if let Some(first) = reg.first_committed_any {
                            if first != txn.id {
                                push(
                                    out,
                                    PASS_ERROR,
                                    work.key_rank,
                                    Event::Error(CheckError::NotMiniTransaction(
                                        MtViolation::DuplicateValue {
                                            key: work.key,
                                            value,
                                            first,
                                            second: txn.id,
                                        },
                                    )),
                                );
                            }
                        }
                    }
                    if reg.first_committed_any.is_none() {
                        reg.first_committed_any = Some(txn.id);
                    }
                    if is_last {
                        if reg.committed_last.is_none() {
                            reg.committed_last = Some(txn.id);
                            self.version_of.insert((txn.id, work.key), value);
                        }
                        self.latest.insert(work.key, value);
                    } else if reg.committed_intermediate.is_none() {
                        reg.committed_intermediate = Some(txn.id);
                    }
                } else if reg.non_committed.is_none() {
                    reg.non_committed = Some(txn.id);
                }
            }
        }

        // ── resolve reads that were waiting for these writes ──
        if committed {
            for work in txn.per_key.iter().filter(|w| owned(w.key)) {
                for &(value, is_last) in &work.writes {
                    let Some(waiters) = self.pending.remove(&(work.key, value)) else {
                        continue;
                    };
                    if is_last {
                        // The version now exists: emit the deferred WR/WW/RW
                        // edges for every waiting reader, in arrival order.
                        for waiter in waiters {
                            self.emit_reads_from(
                                txn.id,
                                waiter.txn,
                                work.key,
                                waiter.writes_key,
                                work.key_rank,
                                &mut push,
                                out,
                            );
                        }
                    } else if prescan {
                        // The value only ever existed mid-transaction.
                        for waiter in waiters {
                            push(
                                out,
                                PASS_INTRA,
                                work.key_rank,
                                Event::Intra(IntraViolation {
                                    anomaly: IntraAnomaly::IntermediateRead,
                                    txn: waiter.txn,
                                    op_index: waiter.op_index,
                                    key: waiter.key,
                                    value: waiter.value,
                                }),
                            );
                        }
                    }
                }
            }
        }

        if !committed || txn.is_init {
            return;
        }

        // ── DIVERGENCE scan (write_set order, like `find_divergence`) ──
        if let Some(pass) = divergence_pass {
            let mut write_keys: Vec<&KeyWork> = txn
                .per_key
                .iter()
                .filter(|w| owned(w.key) && w.writes_key && w.external_read.is_some())
                .collect();
            write_keys.sort_unstable_by_key(|w| w.write_rank);
            for work in write_keys {
                let (value, _) = work.external_read.expect("filtered above");
                match self.first_reader_writer.get(&(work.key, value)) {
                    None => {
                        self.first_reader_writer.insert((work.key, value), txn.id);
                    }
                    Some(&other) if other != txn.id => {
                        let writer = self
                            .writes
                            .get(&(work.key, value))
                            .and_then(|r| r.committed_last);
                        push(
                            out,
                            pass,
                            work.write_rank,
                            Event::Divergence(Divergence {
                                key: work.key,
                                value,
                                writer,
                                reader1: other,
                                reader2: txn.id,
                            }),
                        );
                    }
                    Some(_) => {}
                }
            }
        }

        // ── resolve this transaction's own external reads ──
        for work in txn.per_key.iter().filter(|w| owned(w.key)) {
            let Some((value, op_index)) = work.external_read else {
                continue;
            };
            if value == INIT_VALUE && !has_init {
                // Read of the implicit initial state: no dependency.
                continue;
            }
            if let Some(reg) = self.writes.get_mut(&(work.key, value)) {
                // Reads refresh the GC staleness clock of the version.
                reg.last_touch = reg.last_touch.max(txn.id);
            }
            let reg = self
                .writes
                .get(&(work.key, value))
                .cloned()
                .unwrap_or_default();
            match reg.committed_last {
                Some(writer) if writer != txn.id => {
                    self.emit_reads_from(
                        writer,
                        txn.id,
                        work.key,
                        work.writes_key,
                        work.key_rank,
                        &mut push,
                        out,
                    );
                }
                _ => {
                    // A *foreign* committed transaction overwrote the value
                    // before committing (the reader's own intermediate write
                    // is the FUTUREREAD case, settled at finish()).
                    let foreign_intermediate =
                        reg.committed_intermediate.is_some_and(|w| w != txn.id);
                    if foreign_intermediate && prescan {
                        push(
                            out,
                            PASS_INTRA,
                            work.key_rank,
                            Event::Intra(IntraViolation {
                                anomaly: IntraAnomaly::IntermediateRead,
                                txn: txn.id,
                                op_index,
                                key: work.key,
                                value,
                            }),
                        );
                        continue;
                    }
                    // Nobody (valid) has installed the value yet: defer.
                    self.pending
                        .entry((work.key, value))
                        .or_default()
                        .push(PendingRead {
                            txn: txn.id,
                            op_index,
                            key: work.key,
                            value,
                            future_candidate: work.future_candidate,
                            writes_key: work.writes_key,
                        });
                }
            }
        }
    }

    /// Emits the WR / WW edges of "`reader` reads `key` from `writer`" plus
    /// the RW anti-dependencies derivable from the updated indexes.
    #[allow(clippy::too_many_arguments)]
    fn emit_reads_from(
        &mut self,
        writer: TxnId,
        reader: TxnId,
        key: Key,
        reader_writes_key: bool,
        key_rank: u32,
        push: &mut impl FnMut(&mut Vec<TaggedEvent>, u8, u32, Event),
        out: &mut Vec<TaggedEvent>,
    ) {
        push(
            out,
            PASS_EDGES,
            key_rank,
            Event::Edge {
                from: writer,
                to: reader,
                kind: EdgeKind::Wr(key),
                dedup: false,
            },
        );
        let entry = self.readers_of.entry((writer, key)).or_default();
        entry.0.push(reader);
        // New reader anti-depends on every known overwriter of the version.
        for &overwriter in entry.1.iter() {
            if overwriter != reader {
                push(
                    out,
                    PASS_EDGES,
                    key_rank,
                    Event::Edge {
                        from: reader,
                        to: overwriter,
                        kind: EdgeKind::Rw(key),
                        dedup: true,
                    },
                );
            }
        }
        if reader_writes_key {
            push(
                out,
                PASS_EDGES,
                key_rank,
                Event::Edge {
                    from: writer,
                    to: reader,
                    kind: EdgeKind::Ww(key),
                    dedup: false,
                },
            );
            // Every known reader of the version anti-depends on the new
            // overwriter.
            let readers: Vec<TxnId> = entry.0.iter().copied().filter(|&r| r != reader).collect();
            entry.1.push(reader);
            for other in readers {
                push(
                    out,
                    PASS_EDGES,
                    key_rank,
                    Event::Edge {
                        from: other,
                        to: reader,
                        kind: EdgeKind::Rw(key),
                        dedup: true,
                    },
                );
            }
        }
    }

    /// Drains the still-unresolved reads for end-of-stream classification.
    fn drain_pending(&mut self) -> Vec<PendingRead> {
        let mut all: Vec<PendingRead> = self.pending.drain().flat_map(|(_, v)| v).collect();
        all.sort_by_key(|p| (p.txn, p.op_index));
        all
    }

    /// Classifies a drained pending read exactly as the batch pre-scan
    /// would, now that the stream is complete.
    fn classify_settled(&self, p: &PendingRead) -> IntraViolation {
        let reg = self
            .writes
            .get(&(p.key, p.value))
            .cloned()
            .unwrap_or_default();
        let foreign_non_committed = reg.non_committed.is_some_and(|w| w != p.txn);
        let foreign_intermediate = reg.committed_intermediate.is_some_and(|w| w != p.txn);
        let anomaly = if p.future_candidate && !foreign_non_committed && !foreign_intermediate {
            IntraAnomaly::FutureRead
        } else if foreign_non_committed {
            IntraAnomaly::AbortedRead
        } else if foreign_intermediate {
            IntraAnomaly::IntermediateRead
        } else {
            IntraAnomaly::ThinAirRead
        };
        IntraViolation {
            anomaly,
            txn: p.txn,
            op_index: p.op_index,
            key: p.key,
            value: p.value,
        }
    }

    /// Settled-prefix sweep: drops per-key state that can no longer affect
    /// any verdict under the GC's staleness window — versions that are not
    /// the latest of their key, were last touched before `watermark`, and
    /// have no pending read — together with their `readers_of` /
    /// `first_reader_writer` satellites, and trims reader/overwriter lists
    /// of live versions down to the window (and, when `reader_cap > 0`, to
    /// the `reader_cap` newest readers, recording an eviction marker per
    /// capped version). Purely mutating — the set of transactions the
    /// surviving state still references is materialized separately by
    /// [`KeyState::refs`], and only at collection-commit epochs.
    fn sweep(&mut self, watermark: TxnId, reader_cap: usize) {
        let latest = &self.latest;
        let pending = &self.pending;
        let mut dropped: Vec<(TxnId, Key)> = Vec::new();
        self.writes.retain(|&(key, value), reg| {
            let is_latest = latest.get(&key) == Some(&value);
            let ids = [
                reg.committed_last,
                reg.committed_intermediate,
                reg.non_committed,
                reg.first_committed_any,
            ];
            let old = reg.last_touch < watermark && ids.iter().flatten().all(|&t| t < watermark);
            if is_latest || !old || pending.contains_key(&(key, value)) {
                return true;
            }
            if let Some(w) = reg.committed_last {
                dropped.push((w, key));
            }
            false
        });
        for wk in &dropped {
            self.version_of.remove(wk);
        }
        let dropped: HashSet<(TxnId, Key)> = dropped.into_iter().collect();
        self.readers_of.retain(|wk, _| !dropped.contains(wk));
        // Eviction markers are deliberately *not* dropped with their
        // version: the RW edges lost to an eviction stay lost even after
        // the version itself is retired, so the marker must outlive it —
        // otherwise a qualified clean verdict would silently turn into an
        // unqualified one (and the cumulative count would shrink). The map
        // is bounded by the number of distinct versions ever capped.
        for (wk, (readers, overwriters)) in self.readers_of.iter_mut() {
            // Readers and overwriters below the window can no longer gain
            // RW edges that matter (out-of-window interactions are outside
            // the GC's contract); trimming them unpins their transactions.
            readers.retain(|&r| r >= watermark);
            overwriters.retain(|&o| o >= watermark);
            // Reader-list cap: a hot version whose value never changes
            // keeps accumulating in-window readers between sweeps; with a
            // cap, only the newest `reader_cap` stay resident and the
            // eviction is recorded as an explicit marker (the verdict
            // becomes a qualified certificate — see `GcPolicy`).
            if reader_cap > 0 && readers.len() > reader_cap {
                let drop_n = readers.len() - reader_cap;
                // Readers are appended in stream order, so the front of the
                // list is the oldest.
                readers.drain(..drop_n);
                *self.evicted.entry(*wk).or_default() += drop_n as u64;
            }
        }
        let writes = &self.writes;
        self.first_reader_writer
            .retain(|kv, _| writes.contains_key(kv) || pending.contains_key(kv));
    }

    /// The set of transactions the current per-key state still references
    /// (they must stay resident through a collection). Called right after a
    /// [`KeyState::sweep`] at collection-commit epochs only — the sweeps in
    /// between skip this scan entirely.
    fn refs(&self) -> HashSet<TxnId> {
        let mut refs: HashSet<TxnId> = HashSet::new();
        for reg in self.writes.values() {
            for id in [
                reg.committed_last,
                reg.committed_intermediate,
                reg.non_committed,
                reg.first_committed_any,
            ]
            .into_iter()
            .flatten()
            {
                refs.insert(id);
            }
        }
        for (&(w, _), (readers, overwriters)) in &self.readers_of {
            refs.insert(w);
            refs.extend(readers.iter().copied());
            refs.extend(overwriters.iter().copied());
        }
        refs.extend(self.first_reader_writer.values().copied());
        for waiters in self.pending.values() {
            refs.extend(waiters.iter().map(|p| p.txn));
        }
        refs
    }

    /// Merges disjoint per-shard states back into one (resume path).
    fn merge(states: Vec<KeyState>) -> KeyState {
        let mut out = KeyState::default();
        for s in states {
            out.writes.extend(s.writes);
            out.readers_of.extend(s.readers_of);
            out.first_reader_writer.extend(s.first_reader_writer);
            out.pending.extend(s.pending);
            out.latest.extend(s.latest);
            out.version_of.extend(s.version_of);
            out.evicted.extend(s.evicted);
        }
        out
    }

    /// Splits a state into `shards` key-disjoint states along the same
    /// `hash(key) mod shards` partition the workers use, so a snapshot can
    /// resume under any shard geometry.
    fn reshard(states: Vec<KeyState>, shards: usize) -> Vec<KeyState> {
        let merged = KeyState::merge(states);
        let mut out = vec![KeyState::default(); shards];
        for ((key, value), reg) in merged.writes {
            out[shard_of(key, shards)].writes.insert((key, value), reg);
        }
        for ((txn, key), lists) in merged.readers_of {
            out[shard_of(key, shards)]
                .readers_of
                .insert((txn, key), lists);
        }
        for ((key, value), txn) in merged.first_reader_writer {
            out[shard_of(key, shards)]
                .first_reader_writer
                .insert((key, value), txn);
        }
        for ((key, value), waiters) in merged.pending {
            out[shard_of(key, shards)]
                .pending
                .insert((key, value), waiters);
        }
        for (key, value) in merged.latest {
            out[shard_of(key, shards)].latest.insert(key, value);
        }
        for ((txn, key), value) in merged.version_of {
            out[shard_of(key, shards)]
                .version_of
                .insert((txn, key), value);
        }
        for ((txn, key), dropped) in merged.evicted {
            out[shard_of(key, shards)]
                .evicted
                .insert((txn, key), dropped);
        }
        out
    }

    /// The eviction markers of this state, sorted for determinism.
    fn evictions(&self) -> Vec<Eviction> {
        let mut out: Vec<Eviction> = self
            .evicted
            .iter()
            .map(|(&(writer, key), &dropped)| Eviction {
                writer,
                key,
                dropped,
            })
            .collect();
        out.sort_by_key(|e| (e.writer, e.key));
        out
    }

    /// Longest resident reader list across all live versions — the quantity
    /// the reader cap bounds.
    fn max_reader_list_len(&self) -> usize {
        self.readers_of
            .values()
            .map(|(readers, _)| readers.len())
            .max()
            .unwrap_or(0)
    }
}

// ───────────────────────── the engine ───────────────────────────────────────

/// Owner of one node of the SER/SSER topological order: a transaction, or
/// an auxiliary time node of the SSER time-chain.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
enum NodeOwner {
    Txn(TxnId),
    Time,
}

/// Settled-prefix garbage collection policy for the streaming checkers.
///
/// Every `every` consumed transactions, state older than the most recent
/// `window` transactions is examined: transactions that nothing can touch
/// any more — not the last of their session, not referenced by any live
/// version, reader list or pending read, and (for SSER) not hooked into the
/// retained part of the time-chain — are retired from every index, and
/// their node ids are recycled. Steady-state memory is then proportional to
/// the *active window*, not to the whole history.
///
/// The collector's contract is a **staleness window**: verdicts (including
/// certificates and `first_violation_at`) are identical to the unbounded
/// checker's as long as every transaction only interacts — by data (reading
/// a version) or by time (real-time-ordered instants) — with transactions
/// at most `window` positions older. A read of a version retired by the GC
/// surfaces as the read of an unknown value (the conservative direction)
/// instead of the unbounded run's classification.
///
/// # Reader-list caps
///
/// The sweep trims the reader/overwriter lists of *live* (latest) versions
/// to the window, but a hot key whose version never changes still
/// accumulates up to `window` reader entries between sweeps — with many hot
/// keys, `window × keys` register state. Setting `reader_cap > 0` bounds
/// each live version's resident reader list to the `reader_cap` newest
/// readers; the evicted older readers can no longer contribute RW
/// anti-dependency edges if the version is later overwritten, so a clean
/// verdict obtained under a cap is a **qualified certificate**: violations
/// that are found remain sound (eviction only removes potential edges), but
/// completeness now additionally requires that no more than `reader_cap`
/// in-window readers of any single version conflict with a later writer.
/// Every eviction is recorded as an explicit marker
/// ([`IncrementalChecker::reader_evictions`]) and rides along in
/// [`CheckerSnapshot`]s, so a consumer of the verdict can see exactly which
/// versions the certificate is qualified on. `reader_cap = 0` (the default)
/// disables capping and keeps the unqualified staleness-window contract.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct GcPolicy {
    /// Keep at least the most recent `window` transactions resident.
    pub window: usize,
    /// Run a collection every `every` consumed transactions.
    pub every: usize,
    /// Cap each live version's resident reader list to this many newest
    /// readers at every sweep (0 = unlimited, the default).
    pub reader_cap: usize,
}

impl Default for GcPolicy {
    fn default() -> Self {
        GcPolicy {
            window: 8192,
            every: 2048,
            reader_cap: 0,
        }
    }
}

impl GcPolicy {
    /// A window/cadence policy with both knobs clamped to at least 1 and no
    /// reader cap.
    pub fn clamped(window: usize, every: usize) -> Self {
        GcPolicy {
            window: window.max(1),
            every: every.max(1),
            reader_cap: 0,
        }
    }

    /// Adds a per-key reader-list cap (builder style; see the type docs for
    /// the qualified-certificate contract).
    pub fn with_reader_cap(mut self, cap: usize) -> Self {
        self.reader_cap = cap;
        self
    }

    /// The policy with window and cadence clamped to at least 1, the reader
    /// cap preserved.
    fn normalized(self) -> Self {
        GcPolicy {
            window: self.window.max(1),
            every: self.every.max(1),
            reader_cap: self.reader_cap,
        }
    }
}

/// An explicit eviction marker: the settled-prefix GC capped the reader
/// list of a live version. Clean verdicts produced after evictions are
/// qualified certificates (see [`GcPolicy`]'s reader-cap documentation).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Eviction {
    /// The transaction whose version had readers evicted (`⊥T`'s id for the
    /// initial version).
    pub writer: TxnId,
    /// The key concerned.
    pub key: Key,
    /// How many reader entries have been dropped from this version's list
    /// so far.
    pub dropped: u64,
}

/// Stream-order metadata of a resident transaction, kept for the GC's
/// candidate enumeration (and the SSER chain cut computation).
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
struct TxnMeta {
    begin: Option<u64>,
    end: Option<u64>,
}

/// One queued insertion of the merge thread's batched path. The queue is
/// flushed through [`IncrementalTopo::try_add_edges`] — one affected-region
/// recomputation per flush instead of one per edge — and because the batched
/// insertion is sequence-equivalent to per-edge insertion (same accepted
/// set, same first offender, same canonical cycle certificate), deferring
/// edges is unobservable in the verdicts.
#[derive(Clone, Copy, Debug)]
struct PendingInsert {
    /// Node pair for the level's maintained order (`topo` for SER/SSER,
    /// `composed` for SI). `None` for SI bookkeeping entries, which exist
    /// only to commit their labelled edge to the graph in sequence order.
    pair: Option<(usize, usize)>,
    /// Labelled edge committed to the dependency graph once this entry (and
    /// everything queued before it) is accepted. `None` for SSER time-chain
    /// hook edges and SI composed pairs, which have no labelled counterpart.
    edge: Option<Edge>,
    /// Transaction a rejection of this insert is attributed to.
    at: TxnId,
}

/// Number of sweep epochs per collection commit. Epoch boundaries fire
/// every [`GcPolicy::every`] transactions and always sweep the per-key
/// state (keeping the staleness-window and reader-cap contracts on their
/// original cadence); the graph-side collection — candidate identification,
/// predecessor-closure fixpoint and prune — runs only on every
/// `GC_COMMIT_EPOCHS`-th boundary, so its cost is amortized off the ingest
/// path. Deferring a commit only keeps *more* state resident, which is
/// conservative: verdicts stay bit-identical to an un-collected run, and
/// the resident-set bound grows by at most `GC_COMMIT_EPOCHS · every`
/// transactions over the configured window.
const GC_COMMIT_EPOCHS: u32 = 4;

// ───────────────────── arena-backed engine maps ─────────────────────────────

/// A windowed, dense map keyed by [`TxnId`]: ids at or above `base` index
/// straight into a vector — the hot path, covering every resident
/// transaction of an un-collected stream and the whole GC window of a
/// collected one — while ids below `base` spill into a hash map (`⊥T` and
/// the few transactions the GC pins under its watermark).
/// [`TxnMap::rebase`] moves the window forward at a collection commit so
/// the dense block stays proportional to the live window instead of the
/// whole history.
#[derive(Clone, Debug)]
struct TxnMap<V> {
    base: u32,
    dense: Vec<Option<V>>,
    low: FastHashMap<TxnId, V>,
}

impl<V> Default for TxnMap<V> {
    fn default() -> Self {
        TxnMap {
            base: 0,
            dense: Vec::new(),
            low: FastHashMap::default(),
        }
    }
}

impl<V> TxnMap<V> {
    #[inline]
    fn get(&self, t: TxnId) -> Option<&V> {
        if t.0 >= self.base {
            self.dense.get((t.0 - self.base) as usize)?.as_ref()
        } else {
            self.low.get(&t)
        }
    }

    fn insert(&mut self, t: TxnId, v: V) {
        if t.0 >= self.base {
            let i = (t.0 - self.base) as usize;
            if self.dense.len() <= i {
                self.dense.resize_with(i + 1, || None);
            }
            self.dense[i] = Some(v);
        } else {
            self.low.insert(t, v);
        }
    }

    fn get_or_default(&mut self, t: TxnId) -> &mut V
    where
        V: Default,
    {
        if t.0 >= self.base {
            let i = (t.0 - self.base) as usize;
            if self.dense.len() <= i {
                self.dense.resize_with(i + 1, || None);
            }
            self.dense[i].get_or_insert_with(V::default)
        } else {
            self.low.entry(t).or_default()
        }
    }

    fn remove(&mut self, t: TxnId) {
        if t.0 >= self.base {
            if let Some(slot) = self.dense.get_mut((t.0 - self.base) as usize) {
                *slot = None;
            }
        } else {
            self.low.remove(&t);
        }
    }

    fn iter(&self) -> impl Iterator<Item = (TxnId, &V)> {
        let base = self.base;
        self.low.iter().map(|(&t, v)| (t, v)).chain(
            self.dense
                .iter()
                .enumerate()
                .filter_map(move |(i, v)| Some((TxnId(base + i as u32), v.as_ref()?))),
        )
    }

    /// Moves the dense window up to `base`: surviving entries below it (GC
    /// pins) spill into the low map; retired slots are dropped outright.
    fn rebase(&mut self, base: u32) {
        if base <= self.base {
            return;
        }
        let split = ((base - self.base) as usize).min(self.dense.len());
        let old_base = self.base;
        for (i, slot) in self.dense.drain(..split).enumerate() {
            if let Some(v) = slot {
                self.low.insert(TxnId(old_base + i as u32), v);
            }
        }
        self.base = base;
    }
}

impl<V: Serialize> Serialize for TxnMap<V> {
    fn to_json_value(&self) -> serde::JsonValue {
        let mut items: Vec<(u32, &V)> = self.iter().map(|(t, v)| (t.0, v)).collect();
        items.sort_unstable_by_key(|&(t, _)| t);
        let entries = items
            .into_iter()
            .map(|(t, v)| serde::JsonValue::Array(vec![t.to_json_value(), v.to_json_value()]))
            .collect();
        serde::JsonValue::Object(vec![
            ("base".to_string(), self.base.to_json_value()),
            ("entries".to_string(), serde::JsonValue::Array(entries)),
        ])
    }
}

impl<V: Deserialize> Deserialize for TxnMap<V> {
    fn from_json_value(v: &serde::JsonValue) -> Result<Self, serde::Error> {
        let base = v
            .get("base")
            .ok_or_else(|| serde::Error::missing_field("TxnMap", "base"))?;
        let entries = v
            .get("entries")
            .ok_or_else(|| serde::Error::missing_field("TxnMap", "entries"))?;
        let serde::JsonValue::Array(entries) = entries else {
            return Err(serde::Error::expected("TxnMap", "entries array"));
        };
        let mut out = TxnMap {
            base: u32::from_json_value(base)?,
            ..TxnMap::default()
        };
        for entry in entries {
            let serde::JsonValue::Array(pair) = entry else {
                return Err(serde::Error::expected("TxnMap", "[txn, value] pair"));
            };
            let [t, val] = pair.as_slice() else {
                return Err(serde::Error::expected("TxnMap", "[txn, value] pair"));
            };
            out.insert(TxnId(u32::from_json_value(t)?), V::from_json_value(val)?);
        }
        Ok(out)
    }
}

/// Composed-edge provenance as an arena of adjacency rows indexed by source
/// composed-node id (dense and bounded: composed node ids are recycled by
/// the GC), each row sorted by target id for binary-search lookups — index
/// arithmetic instead of hashing a `(usize, usize)` pair per composition.
#[derive(Clone, Debug, Default)]
struct ProvMap {
    rows: Vec<Vec<(u32, Edge, Option<Edge>)>>,
}

impl ProvMap {
    /// Records provenance for the pair `a → c`; false iff the pair is
    /// already present (first provenance wins, like the batch construction).
    fn record(&mut self, a: usize, c: usize, prov: (Edge, Option<Edge>)) -> bool {
        if self.rows.len() <= a {
            self.rows.resize_with(a + 1, Vec::new);
        }
        let row = &mut self.rows[a];
        match row.binary_search_by_key(&(c as u32), |e| e.0) {
            Ok(_) => false,
            Err(i) => {
                row.insert(i, (c as u32, prov.0, prov.1));
                true
            }
        }
    }

    fn get(&self, a: usize, c: usize) -> Option<(Edge, Option<Edge>)> {
        let row = self.rows.get(a)?;
        let i = row.binary_search_by_key(&(c as u32), |e| e.0).ok()?;
        Some((row[i].1, row[i].2))
    }

    /// Drops every pair with an endpoint flagged in `gone` (a bitmap over
    /// composed-node ids; out-of-range ids are live).
    fn prune(&mut self, gone: &[bool]) {
        let dead = |n: usize| gone.get(n).copied().unwrap_or(false);
        for (a, row) in self.rows.iter_mut().enumerate() {
            if dead(a) {
                *row = Vec::new();
            } else {
                row.retain(|&(c, _, _)| !dead(c as usize));
            }
        }
    }
}

impl Serialize for ProvMap {
    fn to_json_value(&self) -> serde::JsonValue {
        let mut items = Vec::new();
        for (a, row) in self.rows.iter().enumerate() {
            for &(c, base, rw) in row {
                items.push(serde::JsonValue::Array(vec![
                    (a as u32).to_json_value(),
                    c.to_json_value(),
                    base.to_json_value(),
                    rw.to_json_value(),
                ]));
            }
        }
        serde::JsonValue::Array(items)
    }
}

impl Deserialize for ProvMap {
    fn from_json_value(v: &serde::JsonValue) -> Result<Self, serde::Error> {
        let serde::JsonValue::Array(items) = v else {
            return Err(serde::Error::expected("ProvMap", "array"));
        };
        let mut out = ProvMap::default();
        for item in items {
            let serde::JsonValue::Array(quad) = item else {
                return Err(serde::Error::expected("ProvMap", "[a, c, base, rw] entry"));
            };
            let [a, c, base, rw] = quad.as_slice() else {
                return Err(serde::Error::expected("ProvMap", "[a, c, base, rw] entry"));
            };
            out.record(
                u32::from_json_value(a)? as usize,
                u32::from_json_value(c)? as usize,
                (
                    Edge::from_json_value(base)?,
                    Option::<Edge>::from_json_value(rw)?,
                ),
            );
        }
        Ok(out)
    }
}

/// Shared core: labelled graph, topological order(s), verdict latch and
/// session bookkeeping. Both checker flavours feed it the same event stream.
#[derive(Clone, Debug, Serialize, Deserialize)]
struct Engine {
    level: IsolationLevel,
    opts: CheckOptions,
    graph: DependencyGraph,
    /// SER: maintained over *all* edges. SSER: additionally contains the
    /// time-chain nodes and the begin/end hook edges.
    topo: IncrementalTopo,
    /// SI: maintained over the composed graph `(SO ∪ WR ∪ WW) ; RW?`.
    composed: IncrementalTopo,
    /// SI: provenance of each composed edge (base edge, optional RW suffix).
    composed_prov: ProvMap,
    /// SI: base edges indexed by target (for compositions with later RW).
    base_in: TxnMap<Vec<Edge>>,
    /// SI: RW edges indexed by source.
    rw_out: TxnMap<Vec<Edge>>,
    /// SSER: the online time-chain over begin/commit instants.
    chain: TimeChain,
    /// Topological-order node of each resident transaction. An explicit map
    /// (rather than the identity) because pruned node ids are recycled.
    txn_node: TxnMap<usize>,
    /// Composed-order node of each resident transaction (SI).
    txn_cnode: TxnMap<usize>,
    /// Owner of each topological-order node, for cycle splicing.
    node_owner: Vec<NodeOwner>,
    /// Last transaction of each session, with its commit status.
    sessions: Vec<Option<(TxnId, bool)>>,
    /// Stream metadata of every resident (unpruned) transaction.
    live_txns: BTreeMap<TxnId, TxnMeta>,
    /// Settled-prefix GC policy; `None` disables collection.
    gc: Option<GcPolicy>,
    /// `txn_count` at the last epoch boundary (sweep).
    last_gc: usize,
    /// Epoch boundaries since the last collection commit: every
    /// [`GC_COMMIT_EPOCHS`]-th boundary runs the graph-side collection, the
    /// boundaries in between only sweep the per-key state (cheap and
    /// ingest-adjacent), keeping the expensive candidate-closure walk and
    /// prune off the common path. Serialized so a resumed checker keeps the
    /// exact epoch phase and prunes at the same points as an uninterrupted
    /// run.
    gc_epochs: u32,
    /// Transactions retired by the GC so far.
    pruned_txns: usize,
    /// Merge-path queue of deferred insertions (empty on the sequential
    /// per-edge path, which applies immediately).
    #[serde(skip)]
    pending: Vec<PendingInsert>,
    /// Dedup membership of the queued-but-uncommitted labelled edges, so
    /// add-if-absent semantics see the queue exactly as the sequential
    /// checker sees its graph.
    #[serde(skip)]
    pending_set: FastHashSet<(TxnId, TxnId, EdgeKind)>,
    /// Reusable buffer for a transaction's chain + hook edge pairs (SSER
    /// ingest fast path) — pure scratch, never holds data across calls.
    #[serde(skip)]
    time_scratch: Vec<(usize, usize)>,
    /// Chain splice edges emitted while pre-materializing the admitted
    /// transaction's anchors (see [`Engine::admit`]); drained by the same
    /// transaction's `TimeBounds` event. Scratch: always consumed (or
    /// cleared by the next admit) before a snapshot can be taken.
    #[serde(skip)]
    time_prepairs: Vec<(usize, usize)>,
    /// The pre-materialized (begin, end) anchors of the admitted
    /// transaction, saving the `TimeBounds` application the chain lookups.
    #[serde(skip)]
    time_preanchors: (Option<usize>, Option<usize>),
    has_init: bool,
    txn_count: usize,
    committed_count: usize,
    violation: Option<Violation>,
    error: Option<CheckError>,
    violated_at: Option<TxnId>,
}

impl Engine {
    fn new(level: IsolationLevel, opts: CheckOptions) -> Self {
        Engine {
            level,
            opts,
            graph: DependencyGraph::new(0),
            topo: IncrementalTopo::new(),
            composed: IncrementalTopo::new(),
            composed_prov: ProvMap::default(),
            base_in: TxnMap::default(),
            rw_out: TxnMap::default(),
            chain: TimeChain::new(),
            txn_node: TxnMap::default(),
            txn_cnode: TxnMap::default(),
            node_owner: Vec::new(),
            sessions: Vec::new(),
            live_txns: BTreeMap::new(),
            gc: None,
            last_gc: 0,
            gc_epochs: 0,
            pruned_txns: 0,
            pending: Vec::new(),
            pending_set: FastHashSet::default(),
            time_scratch: Vec::new(),
            time_prepairs: Vec::new(),
            time_preanchors: (None, None),
            has_init: false,
            txn_count: 0,
            committed_count: 0,
            violation: None,
            error: None,
            violated_at: None,
        }
    }

    /// Topological-order node of a resident transaction.
    #[inline]
    fn node_of(&self, txn: TxnId) -> usize {
        *self
            .txn_node
            .get(txn)
            .expect("edge endpoint must be a resident transaction")
    }

    /// Composed-order node of a resident transaction (SI).
    #[inline]
    fn cnode_of(&self, txn: TxnId) -> usize {
        *self
            .txn_cnode
            .get(txn)
            .expect("edge endpoint must be a resident transaction")
    }

    /// Records `owner` for a (possibly recycled) topological-order node.
    fn set_owner(&mut self, node: usize, owner: NodeOwner) {
        if self.node_owner.len() <= node {
            self.node_owner.resize(node + 1, NodeOwner::Time);
        }
        self.node_owner[node] = owner;
    }

    fn done(&self) -> bool {
        self.violation.is_some() || self.error.is_some()
    }

    fn latch_violation(&mut self, v: Violation, at: TxnId) {
        if !self.done() {
            self.violation = Some(v);
            self.violated_at = Some(at);
        }
    }

    /// Registers the next transaction: assigns its node, validates its
    /// shape, runs the local intra scan and derives its SO edge. Returns the
    /// events to apply before the key-derived ones.
    fn admit(&mut self, txn: &Transaction, is_init: bool) -> Vec<TaggedEvent> {
        let id = txn.id;
        debug_assert_eq!(id.index(), self.txn_count);
        self.txn_count += 1;
        self.graph.add_node();

        // SSER: committed transactions with at least one recorded instant
        // (⊥T included, matching `check_sser`'s instant collection) hook
        // into the time-chain.
        let time_bounds = (self.level == IsolationLevel::StrictSerializability
            && txn.status == TxnStatus::Committed
            && (txn.begin.is_some() || txn.end.is_some()))
        .then_some((txn.begin, txn.end));

        // SSER ingest fast path: materialize the chain anchors *around* the
        // transaction's own topo node — begin anchor first, end anchor after
        // — so that for in-timestamp-order streams every chain splice and
        // hook edge already agrees with the maintained order and inserts in
        // O(1), with no reorder pass. The splice edges are stashed in
        // `time_prepairs` and submitted together with the hook edges when
        // this transaction's `TimeBounds` event is applied (or deferred).
        self.time_prepairs.clear();
        self.time_preanchors = (None, None);
        let mut pre_pairs = std::mem::take(&mut self.time_prepairs);
        if let Some((Some(begin), _)) = time_bounds {
            let anchor = self.time_anchor(begin, Role::Begin, &mut pre_pairs);
            self.time_preanchors.0 = Some(anchor);
        }
        let node = self.topo.add_node();
        self.txn_node.insert(id, node);
        self.set_owner(node, NodeOwner::Txn(id));
        if let Some((_, Some(end))) = time_bounds {
            let anchor = self.time_anchor(end, Role::End, &mut pre_pairs);
            self.time_preanchors.1 = Some(anchor);
        }
        self.time_prepairs = pre_pairs;
        // The composed order only exists at SI; the other levels skip the
        // node bookkeeping entirely on the ingest hot path.
        if self.level == IsolationLevel::SnapshotIsolation {
            let cnode = self.composed.add_node();
            self.txn_cnode.insert(id, cnode);
        }
        self.live_txns.insert(
            id,
            TxnMeta {
                begin: txn.begin,
                end: txn.end,
            },
        );

        let mut out = Vec::new();
        let mut seq = 0u32;
        let mut push = |out: &mut Vec<TaggedEvent>, pass: u8, event: Event| {
            out.push(TaggedEvent {
                pass,
                key_rank: 0,
                seq,
                event,
            });
            seq += 1;
        };

        if is_init {
            self.has_init = true;
            self.committed_count += 1;
            if let Some((begin, end)) = time_bounds {
                push(&mut out, PASS_EDGES, Event::TimeBounds { begin, end });
            }
            return out;
        }

        if self.opts.validate_mt {
            if let Err(v) = validate_transaction(txn) {
                push(
                    &mut out,
                    PASS_ERROR,
                    Event::Error(CheckError::NotMiniTransaction(v)),
                );
            }
        }

        if txn.status == TxnStatus::Committed {
            self.committed_count += 1;
            if self.opts.prescan_intra {
                self.local_intra_scan(txn, &mut push, &mut out);
            }
            // SO edge: predecessor in the session (or ⊥T for the first).
            if txn.session != SessionId::INIT {
                let s = txn.session.index();
                while self.sessions.len() <= s {
                    self.sessions.push(None);
                }
                let prev = self.sessions[s];
                let source = match prev {
                    Some((p, committed)) => committed.then_some(p),
                    None => self.has_init.then_some(TxnId(0)),
                };
                if let Some(p) = source {
                    push(
                        &mut out,
                        PASS_EDGES,
                        Event::Edge {
                            from: p,
                            to: id,
                            kind: EdgeKind::So,
                            dedup: false,
                        },
                    );
                }
            }
            if let Some((begin, end)) = time_bounds {
                push(&mut out, PASS_EDGES, Event::TimeBounds { begin, end });
            }
        }
        if txn.session != SessionId::INIT {
            let s = txn.session.index();
            while self.sessions.len() <= s {
                self.sessions.push(None);
            }
            self.sessions[s] = Some((id, txn.status == TxnStatus::Committed));
        }
        out
    }

    /// The purely intra-transactional half of the pre-scan (`INT` axiom
    /// violations), mirroring `mtc_history::intra`'s classification.
    fn local_intra_scan(
        &self,
        txn: &Transaction,
        push: &mut impl FnMut(&mut Vec<TaggedEvent>, u8, Event),
        out: &mut Vec<TaggedEvent>,
    ) {
        struct Access {
            value: Value,
            was_write: bool,
        }
        let mut last_access: HashMap<Key, Access> = HashMap::new();
        let mut own_writes: HashMap<Key, Vec<Value>> = HashMap::new();
        for (i, op) in txn.ops.iter().enumerate() {
            match *op {
                Op::Write { key, value } => {
                    own_writes.entry(key).or_default().push(value);
                    last_access.insert(
                        key,
                        Access {
                            value,
                            was_write: true,
                        },
                    );
                }
                Op::Read { key, value } => {
                    if let Some(prev) = last_access.get(&key) {
                        if prev.value != value {
                            let anomaly = if prev.was_write {
                                let earlier =
                                    own_writes.get(&key).map(Vec::as_slice).unwrap_or(&[]);
                                if earlier.contains(&value) {
                                    IntraAnomaly::NotMyLastWrite
                                } else {
                                    IntraAnomaly::NotMyOwnWrite
                                }
                            } else {
                                IntraAnomaly::NonRepeatableReads
                            };
                            push(
                                out,
                                PASS_INTRA,
                                Event::Intra(IntraViolation {
                                    anomaly,
                                    txn: txn.id,
                                    op_index: i,
                                    key,
                                    value,
                                }),
                            );
                        }
                    }
                    last_access.insert(
                        key,
                        Access {
                            value,
                            was_write: false,
                        },
                    );
                }
            }
        }
    }

    /// Applies one event; no-op once a verdict is latched.
    fn apply(&mut self, at: TxnId, event: Event) {
        if self.done() {
            return;
        }
        match event {
            Event::Error(e) => self.error = Some(e),
            Event::Intra(v) => self.latch_violation(Violation::Intra(vec![v]), at),
            Event::Divergence(d) => self.latch_violation(d.into_violation(), at),
            Event::Edge {
                from,
                to,
                kind,
                dedup,
            } => {
                if dedup {
                    if self.graph.contains_edge(from, to, kind) {
                        return;
                    }
                    self.graph.add_edge(from, to, kind);
                } else {
                    self.graph.add_edge(from, to, kind);
                }
                let edge = Edge { from, to, kind };
                match self.level {
                    IsolationLevel::Serializability => self.apply_ser_edge(at, edge),
                    IsolationLevel::SnapshotIsolation => self.apply_si_edge(at, edge),
                    IsolationLevel::StrictSerializability => self.apply_sser_edge(at, edge),
                }
            }
            Event::TimeBounds { begin, end } => self.apply_time_bounds(at, begin, end),
        }
    }

    fn apply_ser_edge(&mut self, at: TxnId, edge: Edge) {
        let (u, v) = (self.node_of(edge.from), self.node_of(edge.to));
        if let Err(cycle) = self.topo.try_add_edge(u, v) {
            let edges = self.ser_cycle_edges(&cycle);
            self.latch_violation(Violation::Cycle { edges }, at);
        }
    }

    /// Maps a cycle over topological-order nodes back to transaction
    /// indices (SER: every node is a transaction) and labels it from the
    /// dependency graph.
    fn ser_cycle_edges(&self, cycle: &[usize]) -> Vec<Edge> {
        let txn_cycle: Vec<usize> = cycle
            .iter()
            .map(|&n| match self.node_owner[n] {
                NodeOwner::Txn(t) => t.index(),
                NodeOwner::Time => unreachable!("SER order contains no time nodes"),
            })
            .collect();
        self.graph.label_node_cycle(&txn_cycle, |_| true)
    }

    /// SSER: a dependency edge is inserted into the *augmented* order (time
    /// nodes included); a rejection means a dependency path contradicts the
    /// time-chain and is spliced back into a labelled counterexample.
    fn apply_sser_edge(&mut self, at: TxnId, edge: Edge) {
        let (u, v) = (self.node_of(edge.from), self.node_of(edge.to));
        if let Err(cycle) = self.topo.try_add_edge(u, v) {
            let edges = self.sser_cycle_edges(&cycle);
            self.latch_violation(Violation::Cycle { edges }, at);
        }
    }

    /// SSER: hooks transaction `at` into the time-chain at its begin/commit
    /// instants (each side independently — a partially timed transaction
    /// still constrains one direction of the real-time order). The chain
    /// splice edges and the hook edges are submitted as **one**
    /// [`IncrementalTopo::try_add_edges`] batch — sequence-equivalent to
    /// edge-at-a-time insertion (same first offender, same canonical
    /// certificate) but with a single affected-region pass per transaction.
    /// A rejected hook edge (e.g. a commit whose reported instants
    /// contradict edges already derived) latches exactly like a
    /// dependency-edge rejection; chain edges can never be the offender
    /// (see the [`mtc_history::TimeChain`] module docs).
    fn apply_time_bounds(&mut self, at: TxnId, begin: Option<u64>, end: Option<u64>) {
        let tnode = self.node_of(at);
        let mut pairs = std::mem::take(&mut self.time_scratch);
        pairs.clear();
        // The admitting pass already materialized the anchors around the
        // transaction's node and stashed their splice edges; pick those up
        // so the whole group inserts forward-only in the monotone case.
        pairs.append(&mut self.time_prepairs);
        let (pre_begin, pre_end) = std::mem::take(&mut self.time_preanchors);
        if let Some(begin) = begin {
            let anchor = match pre_begin {
                Some(a) => a,
                None => self.time_anchor(begin, Role::Begin, &mut pairs),
            };
            pairs.push((anchor, tnode));
        }
        if let Some(end) = end {
            let anchor = match pre_end {
                Some(a) => a,
                None => self.time_anchor(end, Role::End, &mut pairs),
            };
            pairs.push((tnode, anchor));
        }
        if let Err((_, cycle)) = self.topo.try_add_edges(&pairs) {
            let edges = self.sser_cycle_edges(&cycle);
            self.latch_violation(Violation::Cycle { edges }, at);
        }
        self.time_scratch = pairs;
    }

    /// Materializes the `role` anchor of `instant` (required chain edges
    /// are pushed onto `pairs`, not yet inserted) and keeps the node-owner
    /// map aligned: at most one node is allocated per call — possibly
    /// recycling a pruned id — and when one is, it is the returned anchor.
    fn time_anchor(&mut self, instant: u64, role: Role, pairs: &mut Vec<(usize, usize)>) -> usize {
        let anchor = self.chain.anchor(instant, role, &mut self.topo, pairs);
        self.set_owner(anchor, NodeOwner::Time);
        anchor
    }

    /// Maps a cycle over the augmented (transaction + time node) order back
    /// to labelled edges, mirroring the splice of [`crate::check_sser`]:
    /// direct transaction-to-transaction hops are labelled from the
    /// dependency graph, hops through time nodes become RT edges.
    fn sser_cycle_edges(&self, cycle: &[usize]) -> Vec<Edge> {
        let len = cycle.len();
        let real_positions: Vec<usize> = (0..len)
            .filter(|&i| matches!(self.node_owner[cycle[i]], NodeOwner::Txn(_)))
            .collect();
        debug_assert!(
            !real_positions.is_empty(),
            "a cycle cannot consist of time nodes only"
        );
        let mut edges = Vec::new();
        for (idx, &pos) in real_positions.iter().enumerate() {
            let next_pos = real_positions[(idx + 1) % real_positions.len()];
            let NodeOwner::Txn(u) = self.node_owner[cycle[pos]] else {
                unreachable!("filtered to transaction nodes");
            };
            let NodeOwner::Txn(v) = self.node_owner[cycle[next_pos]] else {
                unreachable!("filtered to transaction nodes");
            };
            let direct_hop = (pos + 1) % len == next_pos;
            if direct_hop {
                let labelled = self
                    .graph
                    .label_node_cycle(&[u.index(), v.index()], |_| true);
                if let Some(e) = labelled.into_iter().find(|e| e.from == u) {
                    edges.push(e);
                    continue;
                }
            }
            edges.push(Edge {
                from: u,
                to: v,
                kind: EdgeKind::Rt,
            });
        }
        edges
    }

    fn apply_si_edge(&mut self, at: TxnId, edge: Edge) {
        match edge.kind {
            EdgeKind::So | EdgeKind::Wr(_) | EdgeKind::Ww(_) => {
                let (a, b) = (self.cnode_of(edge.from), self.cnode_of(edge.to));
                self.add_composed(at, a, b, (edge, None));
                if self.done() {
                    return;
                }
                let suffixes: Vec<Edge> = self.rw_out.get(edge.to).cloned().unwrap_or_default();
                for rw in suffixes {
                    let c = self.cnode_of(rw.to);
                    self.add_composed(at, a, c, (edge, Some(rw)));
                    if self.done() {
                        return;
                    }
                }
                self.base_in.get_or_default(edge.to).push(edge);
            }
            EdgeKind::Rw(_) => {
                let c = self.cnode_of(edge.to);
                let bases: Vec<Edge> = self.base_in.get(edge.from).cloned().unwrap_or_default();
                for base in bases {
                    let a = self.cnode_of(base.from);
                    self.add_composed(at, a, c, (base, Some(edge)));
                    if self.done() {
                        return;
                    }
                }
                self.rw_out.get_or_default(edge.from).push(edge);
            }
            EdgeKind::Rt => {}
        }
    }

    /// Inserts a composed edge (first provenance wins, like the batch
    /// construction) and checks acyclicity of the composed graph. A 2-cycle
    /// `a → c → a` through an RW suffix surfaces as the self-pair `(a, a)`,
    /// which the maintained order rejects as a one-node cycle labelled from
    /// its own provenance — no special casing needed.
    fn add_composed(&mut self, at: TxnId, a: usize, c: usize, prov: (Edge, Option<Edge>)) {
        if !self.record_composed(a, c, prov) {
            return;
        }
        if let Err(cycle) = self.composed.try_add_edge(a, c) {
            let edges = self.composed_cycle_edges(&cycle);
            self.latch_violation(Violation::Cycle { edges }, at);
        }
    }

    /// Records the provenance of a composed pair; false iff the pair is
    /// already present (first provenance wins, like the batch construction).
    fn record_composed(&mut self, a: usize, c: usize, prov: (Edge, Option<Edge>)) -> bool {
        self.composed_prov.record(a, c, prov)
    }

    /// Expands a composed-graph node cycle into labelled edges via the
    /// recorded provenance.
    fn composed_cycle_edges(&self, cycle: &[usize]) -> Vec<Edge> {
        let mut edges = Vec::new();
        for i in 0..cycle.len() {
            let u = cycle[i];
            let v = cycle[(i + 1) % cycle.len()];
            if let Some((base, rw)) = self.composed_prov.get(u, v) {
                edges.push(base);
                if let Some(rw) = rw {
                    edges.push(rw);
                }
            }
        }
        edges
    }

    // ── the deferred (merge-thread) path ────────────────────────────────

    /// Merge-path variant of [`Engine::apply`]: dependency edges — and, in
    /// SSER mode, the time-chain hook edges — are queued instead of inserted,
    /// and the queue is drained through the batched
    /// [`IncrementalTopo::try_add_edges`] at the next [`Engine::flush_deferred`].
    /// Every non-edge event forces a flush first, so the observable sequence
    /// of verdict-relevant effects is identical to the sequential per-edge
    /// path by construction.
    fn apply_deferred(&mut self, at: TxnId, event: Event) {
        if self.done() {
            return;
        }
        match event {
            Event::Edge {
                from,
                to,
                kind,
                dedup,
            } => {
                if dedup
                    && (self.graph.contains_edge(from, to, kind)
                        || !self.pending_set.insert((from, to, kind)))
                {
                    return;
                }
                let edge = Edge { from, to, kind };
                match self.level {
                    IsolationLevel::Serializability | IsolationLevel::StrictSerializability => {
                        let pair = (self.node_of(from), self.node_of(to));
                        self.pending.push(PendingInsert {
                            pair: Some(pair),
                            edge: Some(edge),
                            at,
                        })
                    }
                    IsolationLevel::SnapshotIsolation => {
                        self.pending.push(PendingInsert {
                            pair: None,
                            edge: Some(edge),
                            at,
                        });
                        self.compose_deferred(at, edge);
                    }
                }
            }
            Event::TimeBounds { begin, end } => self.defer_time_bounds(at, begin, end),
            other => {
                self.flush_deferred();
                self.apply(at, other);
            }
        }
    }

    /// SI collection-time composition: mirrors [`Engine::apply_si_edge`],
    /// but queues the composed pairs for the next flush instead of
    /// inserting them into the maintained order.
    fn compose_deferred(&mut self, at: TxnId, edge: Edge) {
        match edge.kind {
            EdgeKind::So | EdgeKind::Wr(_) | EdgeKind::Ww(_) => {
                let (a, b) = (self.cnode_of(edge.from), self.cnode_of(edge.to));
                self.queue_composed(at, a, b, (edge, None));
                let suffixes: Vec<Edge> = self.rw_out.get(edge.to).cloned().unwrap_or_default();
                for rw in suffixes {
                    let c = self.cnode_of(rw.to);
                    self.queue_composed(at, a, c, (edge, Some(rw)));
                }
                self.base_in.get_or_default(edge.to).push(edge);
            }
            EdgeKind::Rw(_) => {
                let c = self.cnode_of(edge.to);
                let bases: Vec<Edge> = self.base_in.get(edge.from).cloned().unwrap_or_default();
                for base in bases {
                    let a = self.cnode_of(base.from);
                    self.queue_composed(at, a, c, (base, Some(edge)));
                }
                self.rw_out.get_or_default(edge.from).push(edge);
            }
            EdgeKind::Rt => {}
        }
    }

    fn queue_composed(&mut self, at: TxnId, a: usize, c: usize, prov: (Edge, Option<Edge>)) {
        if self.record_composed(a, c, prov) {
            self.pending.push(PendingInsert {
                pair: Some((a, c)),
                edge: None,
                at,
            });
        }
    }

    /// SSER merge path: the chain *nodes* are still allocated immediately
    /// (their ids must be assigned in event order), but both the splice
    /// edges and the begin/end *hook* edges join the deferred queue like
    /// any dependency edge — so one flush inserts dependency and time-chain
    /// constraints together. Deferring the splice edges is safe because
    /// they can never be rejected (see [`mtc_history::TimeChain`]), so they
    /// can never be a batch's first offender.
    fn defer_time_bounds(&mut self, at: TxnId, begin: Option<u64>, end: Option<u64>) {
        let tnode = self.node_of(at);
        let mut pairs = std::mem::take(&mut self.time_scratch);
        pairs.clear();
        // Same pick-up as `apply_time_bounds`: admit pre-materialized the
        // anchors, the splice edges ride the deferred queue with the hooks.
        pairs.append(&mut self.time_prepairs);
        let (pre_begin, pre_end) = std::mem::take(&mut self.time_preanchors);
        if let Some(begin) = begin {
            let anchor = match pre_begin {
                Some(a) => a,
                None => self.time_anchor(begin, Role::Begin, &mut pairs),
            };
            pairs.push((anchor, tnode));
        }
        if let Some(end) = end {
            let anchor = match pre_end {
                Some(a) => a,
                None => self.time_anchor(end, Role::End, &mut pairs),
            };
            pairs.push((tnode, anchor));
        }
        for pair in pairs.drain(..) {
            self.pending.push(PendingInsert {
                pair: Some(pair),
                edge: None,
                at,
            });
        }
        self.time_scratch = pairs;
    }

    /// Drains the deferred queue: inserts the queued node pairs with one
    /// batched call, commits the accepted labelled edges to the dependency
    /// graph in sequence order, and — when the batch closes a cycle —
    /// latches exactly the violation the sequential path would latch, with
    /// the same canonical certificate, attributed to the same transaction.
    fn flush_deferred(&mut self) {
        if self.pending.is_empty() {
            return;
        }
        if self.done() {
            self.pending.clear();
            self.pending_set.clear();
            return;
        }
        let pending = std::mem::take(&mut self.pending);
        self.pending_set.clear();
        let mut pairs: Vec<(usize, usize)> = Vec::with_capacity(pending.len());
        let mut entry_of_pair: Vec<usize> = Vec::with_capacity(pending.len());
        for (i, p) in pending.iter().enumerate() {
            if let Some(pair) = p.pair {
                pairs.push(pair);
                entry_of_pair.push(i);
            }
        }
        let result = match self.level {
            IsolationLevel::SnapshotIsolation => self.composed.try_add_edges(&pairs),
            _ => self.topo.try_add_edges(&pairs),
        };
        match result {
            Ok(()) => {
                for p in &pending {
                    if let Some(e) = p.edge {
                        self.graph.add_edge(e.from, e.to, e.kind);
                    }
                }
            }
            Err((k, cycle)) => {
                let offender = entry_of_pair[k];
                for p in &pending[..=offender] {
                    if let Some(e) = p.edge {
                        self.graph.add_edge(e.from, e.to, e.kind);
                    }
                }
                let edges = match self.level {
                    IsolationLevel::Serializability => self.ser_cycle_edges(&cycle),
                    IsolationLevel::StrictSerializability => self.sser_cycle_edges(&cycle),
                    IsolationLevel::SnapshotIsolation => self.composed_cycle_edges(&cycle),
                };
                self.latch_violation(Violation::Cycle { edges }, pending[offender].at);
            }
        }
    }

    /// True iff an epoch boundary (per-key sweep, possibly a collection
    /// commit) is due under the configured policy.
    fn gc_due(&self) -> bool {
        match self.gc {
            Some(policy) => !self.done() && self.txn_count - self.last_gc >= policy.every,
            None => false,
        }
    }

    /// Advances the epoch clock at a due boundary; true iff this boundary
    /// is a collection commit, i.e. the caller should materialize the
    /// key-state refs and run [`Engine::collect`]. Every boundary sweeps the
    /// per-key state (so the reader-cap contract keeps its original
    /// cadence); only every [`GC_COMMIT_EPOCHS`]-th runs the graph-side
    /// candidate closure and prune.
    fn begin_epoch(&mut self) -> bool {
        self.last_gc = self.txn_count;
        self.gc_epochs += 1;
        if self.gc_epochs >= GC_COMMIT_EPOCHS {
            self.gc_epochs = 0;
            true
        } else {
            false
        }
    }

    /// True iff the next due epoch boundary will be a collection commit —
    /// the sharded checker asks *before* sweeping so the workers only
    /// materialize their refs when a commit will consume them.
    fn commit_epoch_next(&self) -> bool {
        self.gc_epochs + 1 >= GC_COMMIT_EPOCHS
    }

    /// The transaction-id watermark of the next collection: everything at or
    /// above it is inside the protected window.
    fn gc_watermark(&self) -> TxnId {
        let window = self.gc.map(|p| p.window).unwrap_or(usize::MAX);
        TxnId(self.txn_count.saturating_sub(window) as u32)
    }

    /// Retires the settled prefix below `watermark`: every resident
    /// transaction that is not referenced by the key-state (`refs`), is not
    /// the last of its session, and whose node has no retained predecessor
    /// — plus, in SSER mode, the time-chain prefix hooking only retired
    /// transactions. The retained structure answers every future insertion
    /// exactly as the unretired one would (see [`GcPolicy`] for the
    /// staleness-window contract).
    ///
    /// Callers must have flushed the deferred queue first.
    fn collect(&mut self, watermark: TxnId, refs: &HashSet<TxnId>) {
        if self.done() {
            return;
        }
        debug_assert!(self.pending.is_empty(), "collect() with a deferred queue");

        // ── candidate transactions ──
        // Membership is a bitmap over transaction ids below the watermark
        // (plus the ordered list for iteration): the closure loop below
        // tests and clears membership per predecessor walk, and bitmaps
        // make those index arithmetic instead of hash probes.
        let keep_sessions: FastHashSet<TxnId> =
            self.sessions.iter().flatten().map(|&(t, _)| t).collect();
        let mut cand_list: Vec<TxnId> = self
            .live_txns
            .range(..watermark)
            .map(|(&t, _)| t)
            .filter(|t| !(self.has_init && t.0 == 0)) // ⊥T anchors new sessions
            .filter(|t| !refs.contains(t))
            .filter(|t| !keep_sessions.contains(t))
            .collect();
        let mut cand = vec![false; watermark.0 as usize];
        for &t in &cand_list {
            cand[t.index()] = true;
        }

        // ── candidate time-chain prefix (SSER) ──
        // `cut`: the smallest instant any retained transaction (other than
        // ⊥T) is hooked at; slots strictly below it hook candidates only.
        // ⊥T's own slot is never pruned — it anchors the chain, and the
        // deliberate cut edge out of it is deleted and replaced by a
        // shortcut to the first retained slot.
        let mut pruned_slots: Vec<(u64, TimeSlot)> = Vec::new();
        let mut chain_low = 0u64;
        if self.level == IsolationLevel::StrictSerializability && !self.chain.is_empty() {
            let bot = self
                .has_init
                .then(|| self.live_txns.get(&TxnId(0)))
                .flatten();
            chain_low = bot
                .map(|m| {
                    m.begin
                        .into_iter()
                        .chain(m.end)
                        .max()
                        .map_or(0, |t| t.saturating_add(1))
                })
                .unwrap_or(0);
            let cut = self
                .live_txns
                .iter()
                .filter(|(t, _)| {
                    !(cand.get(t.index()).copied().unwrap_or(false) || self.has_init && t.0 == 0)
                })
                .filter_map(|(_, m)| m.begin.into_iter().chain(m.end).min())
                .min()
                .unwrap_or(u64::MAX);
            if cut > chain_low {
                pruned_slots = self.chain.slots_in(chain_low, cut);
            }
        }
        // Deliberate cut sources: nodes that are provably unreachable from
        // every transaction node, so their edges *into* the pruned set can
        // be deleted without losing any constraint a future counterexample
        // path could use. That is ⊥T itself — nothing ever points into it
        // (its begin-time hook comes from the equally unreachable first
        // chain slot) — and the end nodes of the permanently retained chain
        // slots below the pruned range (⊥T's instants).
        let mut cut_sources: Vec<usize> = self
            .chain
            .slots_in(0, chain_low)
            .iter()
            .map(|&(_, s)| s.end_node)
            .collect();
        let si = self.level == IsolationLevel::SnapshotIsolation;
        let bot_cnode = if self.has_init {
            cut_sources.push(self.node_of(TxnId(0)));
            si.then(|| self.cnode_of(TxnId(0)))
        } else {
            None
        };

        // ── closure: drop candidates that anything retained still points at ──
        // `in_nodes` / `in_cnodes` mirror the candidate set as bitmaps over
        // (composed-)order node ids; dropped members are unmarked in place,
        // so each round's predecessor walks are pure index arithmetic.
        let nb = self.topo.node_count();
        let mut in_nodes = vec![false; nb];
        let mut cut_mask = vec![false; nb];
        for &s in &cut_sources {
            cut_mask[s] = true;
        }
        for &t in &cand_list {
            in_nodes[self.node_of(t)] = true;
        }
        for &(_, s) in &pruned_slots {
            for n in s.nodes() {
                in_nodes[n] = true;
            }
        }
        // Chain-exit anchors of candidate slots that the closure retains.
        // A retained slot's exit only ever points *forward* along the chain
        // (splice, split and shortcut edges all follow instant order), so it
        // is an acceptable predecessor of a later candidate: the collection
        // commit deletes its edges into the pruned set and re-establishes
        // the chain order with one shortcut per pruned run. Without this, a
        // single straggler-pinned slot would cascade-retain every slot (and
        // transaction) behind it.
        let mut slot_out_mask = vec![false; nb];
        let mut slot_dead = vec![false; pruned_slots.len()];
        let mut in_cnodes = vec![false; if si { self.composed.node_count() } else { 0 }];
        if si {
            for &t in &cand_list {
                in_cnodes[self.cnode_of(t)] = true;
            }
        }
        loop {
            let mut drop_txns: Vec<TxnId> = Vec::new();
            let mut drop_slots: Vec<usize> = Vec::new();
            for &t in &cand_list {
                if !cand[t.index()] {
                    continue;
                }
                let n = self.node_of(t);
                if self
                    .topo
                    .predecessors(n)
                    .any(|p| !in_nodes[p] && !cut_mask[p] && !slot_out_mask[p])
                {
                    drop_txns.push(t);
                }
            }
            for (i, &(_, s)) in pruned_slots.iter().enumerate() {
                if slot_dead[i] {
                    continue;
                }
                let bad = s.nodes().any(|n| {
                    self.topo
                        .predecessors(n)
                        .any(|p| !in_nodes[p] && !cut_mask[p] && !slot_out_mask[p])
                });
                if bad {
                    drop_slots.push(i);
                }
            }
            if si {
                for &t in &cand_list {
                    if !cand[t.index()] {
                        continue;
                    }
                    let n = self.cnode_of(t);
                    if self
                        .composed
                        .predecessors(n)
                        .any(|p| !in_cnodes[p] && Some(p) != bot_cnode)
                    {
                        drop_txns.push(t);
                    }
                }
                // A retained composition index must never compose a new
                // edge that touches a pruned endpoint. Only *active* owners
                // can still compose: `base_in[b]` fires on a new RW edge
                // out of `b`, which needs `b` in a live readers list
                // (trimmed to ≥ watermark); `rw_out[b]` fires on a new base
                // edge into `b`, which makes `b` a reader of a fresh
                // resolution — a new transaction or one with a pending read
                // (pinned via `refs`). Entries of settled owners are inert
                // and must not disqualify their endpoints.
                let is_cand = |t: TxnId| cand.get(t.index()).copied().unwrap_or(false);
                let active = |owner: TxnId| owner >= watermark || refs.contains(&owner);
                for (owner, edges) in self.base_in.iter() {
                    if active(owner) {
                        drop_txns.extend(edges.iter().map(|e| e.from).filter(|&t| is_cand(t)));
                    }
                }
                for (owner, edges) in self.rw_out.iter() {
                    if active(owner) {
                        drop_txns.extend(edges.iter().map(|e| e.to).filter(|&t| is_cand(t)));
                    }
                }
            }
            if drop_txns.is_empty() && drop_slots.is_empty() {
                break;
            }
            for t in drop_txns {
                if cand[t.index()] {
                    cand[t.index()] = false;
                    in_nodes[self.node_of(t)] = false;
                    if si {
                        in_cnodes[self.cnode_of(t)] = false;
                    }
                }
            }
            for i in drop_slots {
                slot_dead[i] = true;
                let (_, s) = pruned_slots[i];
                for n in s.nodes() {
                    in_nodes[n] = false;
                }
                slot_out_mask[s.end_node] = true;
            }
        }
        cand_list.retain(|&t| cand[t.index()]);
        let mut dead = slot_dead.iter();
        pruned_slots.retain(|_| !*dead.next().expect("one flag per slot"));
        if cand_list.is_empty() && pruned_slots.is_empty() {
            return;
        }

        // ── commit the collection ──
        let mut nodes: Vec<usize> = cand_list.iter().map(|&t| self.node_of(t)).collect();
        for &(_, s) in &pruned_slots {
            nodes.extend(s.nodes());
        }
        // Closure-retained slots keep their chain exits as deliberate cut
        // sources: their forward edges into the pruned runs are deleted and
        // replaced by one shortcut per run below.
        for (s, _) in slot_out_mask.iter().enumerate().filter(|&(_, &m)| m) {
            cut_sources.push(s);
        }
        // Group the surviving slots into maximal chain-adjacent runs; each
        // run is bridged by a single shortcut from the retained slot just
        // below it to the retained slot just above it (when both exist), so
        // the retained chain order survives mid-chain compaction, not just
        // prefix pruning.
        let mut runs: Vec<(u64, u64)> = Vec::new();
        for &(t, _) in &pruned_slots {
            match runs.last_mut() {
                Some(run) if self.chain.succ(run.1).map(|(n, _)| n) == Some(t) => run.1 = t,
                _ => runs.push((t, t)),
            }
        }
        for &(first, last) in &runs {
            if let (Some((_, a)), Some((_, s))) = (self.chain.pred(first), self.chain.succ(last)) {
                if !self.topo.has_edge(a.end_node, s.begin_node) {
                    self.topo
                        .try_add_edge(a.end_node, s.begin_node)
                        .expect("chain shortcut follows the existing order");
                }
            }
        }
        for &(first, last) in &runs {
            self.chain.remove_range(first, last + 1);
        }
        for &src in &cut_sources {
            self.topo.remove_edges_into(src, &nodes);
        }
        self.topo.prune(&nodes);
        if si {
            let cand_cnodes: Vec<usize> = cand_list.iter().map(|&t| self.cnode_of(t)).collect();
            if let Some(bc) = bot_cnode {
                self.composed.remove_edges_into(bc, &cand_cnodes);
            }
            self.composed.prune(&cand_cnodes);
            // `in_cnodes` now flags exactly the surviving candidates.
            self.composed_prov.prune(&in_cnodes);
        }
        self.graph
            .prune_nodes(|t| cand.get(t.index()).copied().unwrap_or(false));
        for &t in &cand_list {
            self.txn_node.remove(t);
            self.txn_cnode.remove(t);
            self.base_in.remove(t);
            self.rw_out.remove(t);
            self.live_txns.remove(&t);
        }
        self.pruned_txns += cand_list.len();
        // Re-base the windowed maps: the dense blocks track the live window
        // and the (bounded) set of pinned stragglers spills into the low
        // maps, so resident memory stays proportional to the window.
        self.txn_node.rebase(watermark.0);
        self.txn_cnode.rebase(watermark.0);
        self.base_in.rebase(watermark.0);
        self.rw_out.rebase(watermark.0);
    }
}

/// Where (and whether) the DIVERGENCE scan's events sort for the given
/// level and options. SER never scans; SI scans before the edges by default
/// and after them in ablation mode (matching `check_si_with`, which always
/// re-checks divergence because the composed graph can mask it).
fn divergence_pass(level: IsolationLevel, opts: &CheckOptions) -> Option<u8> {
    (level == IsolationLevel::SnapshotIsolation).then_some(if opts.skip_divergence_early_exit {
        PASS_LATE_DIVERGENCE
    } else {
        PASS_DIVERGENCE
    })
}

// ───────────────────────── public checkers ──────────────────────────────────

/// Starts a sampled per-transaction ingest span: times every 16th push.
/// At ~1M txns/s the two `Instant::now` calls of an unsampled span would
/// alone cost ~5% of the ingest budget; uniform 1-in-16 sampling keeps the
/// `checker.ingest_txn_micros` quantiles honest at ~0.3% overhead.
#[inline]
fn obs_ingest_timer() -> Option<std::time::Instant> {
    if !mtc_obs::enabled() {
        return None;
    }
    thread_local! {
        static TICK: std::cell::Cell<u32> = const { std::cell::Cell::new(0) };
    }
    TICK.with(|t| {
        let v = t.get().wrapping_add(1);
        t.set(v);
        (v % 16 == 0).then(std::time::Instant::now)
    })
}

/// Streaming verdict over the prefix consumed so far.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum StreamStatus {
    /// No violation is provable from the consumed prefix.
    ConsistentSoFar,
    /// The prefix already violates the isolation level.
    Violated,
}

/// A complete, self-contained snapshot of a streaming checker: everything
/// needed to resume verification exactly where it stopped — the engine
/// (graphs, maintained orders, time-chain, verdict latch) plus the per-key
/// provenance indexes.
///
/// Snapshots are geometry-independent: a snapshot taken from the sequential
/// checker resumes into a sharded one and vice versa (the key state is
/// re-partitioned along the same `hash(key) mod shards` split the workers
/// use). They serialize through the workspace serde stack, so `mtc-store`
/// can frame them into checkpoint files; a resumed checker finishes with a
/// verdict — violation payload and `first_violation_at` included —
/// bit-identical to the uninterrupted run's.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct CheckerSnapshot {
    /// Snapshot format version.
    version: u32,
    /// Shard count of the checkpointing checker (1 for the sequential one).
    shards: usize,
    engine: Engine,
    /// One key state per shard of the checkpointing checker.
    keys: Vec<KeyState>,
}

/// Current snapshot format version. Bumped to 2 when the per-key state
/// gained explicit reader-eviction markers (the GC reader-cap feature); to
/// 3 when the engine's hot maps moved to windowed arenas ([`TxnMap`] /
/// [`ProvMap`] layouts) and the GC gained epoch scheduling (`gc_epochs`);
/// to 4 when the time-chain moved to collapsed single-node slots with lazy
/// role splitting (the `TimeChain` serialization changed shape).
pub const SNAPSHOT_VERSION: u32 = 4;

impl CheckerSnapshot {
    /// The isolation level the snapshotted checker enforces.
    pub fn level(&self) -> IsolationLevel {
        self.engine.level
    }

    /// Transactions consumed when the snapshot was taken (including `⊥T`).
    pub fn txn_count(&self) -> usize {
        self.engine.txn_count
    }

    /// Shard count of the checker that took the snapshot.
    pub fn shards(&self) -> usize {
        self.shards
    }

    /// Snapshot format version.
    pub fn version(&self) -> u32 {
        self.version
    }

    /// The reader-eviction markers carried by the snapshot, across all of
    /// its shards (sorted; see [`GcPolicy`]'s reader-cap contract).
    pub fn reader_evictions(&self) -> Vec<Eviction> {
        let mut out: Vec<Eviction> = self.keys.iter().flat_map(KeyState::evictions).collect();
        out.sort_by_key(|e| (e.writer, e.key));
        out
    }
}

/// An online SER/SI checker consuming committed transactions one at a time.
///
/// ```
/// use mtc_core::{IncrementalChecker, IsolationLevel};
/// use mtc_history::Op;
///
/// let mut checker = IncrementalChecker::new_ser().with_init_keys(0..2u64);
/// checker.push_committed(0, vec![Op::read(0u64, 0u64), Op::write(0u64, 7u64)]).unwrap();
/// checker.push_committed(1, vec![Op::read(0u64, 7u64)]).unwrap();
/// assert!(checker.violation().is_none());
/// assert!(checker.finish().unwrap().is_satisfied());
/// ```
#[derive(Clone, Debug)]
pub struct IncrementalChecker {
    engine: Engine,
    keys: KeyState,
}

impl IncrementalChecker {
    /// A streaming checker for `level` with default [`CheckOptions`] (the
    /// very same defaults the batch checkers use).
    ///
    /// For [`IsolationLevel::StrictSerializability`], transactions should be
    /// fed with begin/commit instants (the `*_timed` push methods, or
    /// [`Transaction`]s carrying `begin`/`end`); untimed transactions simply
    /// contribute no real-time constraints, exactly as in the batch
    /// [`crate::check_sser`].
    pub fn new(level: IsolationLevel) -> Self {
        IncrementalChecker {
            engine: Engine::new(level, CheckOptions::default()),
            keys: KeyState::default(),
        }
    }

    /// A streaming `CHECKSER`.
    pub fn new_ser() -> Self {
        IncrementalChecker::new(IsolationLevel::Serializability)
    }

    /// A streaming `CHECKSI`.
    pub fn new_si() -> Self {
        IncrementalChecker::new(IsolationLevel::SnapshotIsolation)
    }

    /// A streaming `CHECKSSER` (online time-chain). See also the
    /// timestamp-first wrapper [`IncrementalSserChecker`].
    pub fn new_sser() -> Self {
        IncrementalChecker::new(IsolationLevel::StrictSerializability)
    }

    /// Overrides the tuning options (shared with the batch checkers).
    pub fn with_options(mut self, opts: CheckOptions) -> Self {
        self.engine.opts = opts;
        self
    }

    /// Enables settled-prefix garbage collection (see [`GcPolicy`]): memory
    /// stays proportional to the active window instead of the history.
    pub fn with_gc(mut self, policy: GcPolicy) -> Self {
        self.set_gc(policy);
        self
    }

    /// Non-consuming form of [`IncrementalChecker::with_gc`].
    pub fn set_gc(&mut self, policy: GcPolicy) {
        self.engine.gc = Some(policy.normalized());
    }

    /// The garbage-collection policy in effect, if any.
    pub fn gc_policy(&self) -> Option<GcPolicy> {
        self.engine.gc
    }

    /// Number of transactions currently resident (not retired by the GC).
    pub fn live_txn_count(&self) -> usize {
        self.engine.live_txns.len()
    }

    /// Number of live nodes in the maintained order(s) — transactions plus,
    /// in SSER mode, time-chain nodes. The quantity the GC bounds.
    pub fn live_node_count(&self) -> usize {
        self.engine
            .topo
            .live_node_count()
            .max(self.engine.composed.live_node_count())
    }

    /// Explicit eviction markers recorded by the GC's reader-list cap: one
    /// per live version whose resident reader list was trimmed beyond the
    /// staleness window. Empty unless [`GcPolicy::reader_cap`] is set. A
    /// clean verdict with a non-empty marker set is a qualified
    /// certificate (see [`GcPolicy`]).
    pub fn reader_evictions(&self) -> Vec<Eviction> {
        self.keys.evictions()
    }

    /// Total reader entries dropped by the GC's reader-list cap so far.
    pub fn reader_eviction_count(&self) -> u64 {
        self.keys.evicted.values().sum()
    }

    /// Longest resident reader list across all live versions — the register
    /// state a hot, never-overwritten key accumulates; the quantity
    /// [`GcPolicy::reader_cap`] bounds.
    pub fn max_reader_list_len(&self) -> usize {
        self.keys.max_reader_list_len()
    }

    /// Transactions retired by the GC so far.
    pub fn pruned_txn_count(&self) -> usize {
        self.engine.pruned_txns
    }

    /// Captures a complete [`CheckerSnapshot`] of the current state.
    pub fn checkpoint(&self) -> CheckerSnapshot {
        CheckerSnapshot {
            version: SNAPSHOT_VERSION,
            shards: 1,
            engine: self.engine.clone(),
            keys: vec![self.keys.clone()],
        }
    }

    /// Reconstructs a sequential checker from a snapshot (taken from a
    /// sequential *or* sharded checker — shard key states are merged). The
    /// resumed checker continues exactly where the snapshot stopped:
    /// feeding it the remaining stream yields a verdict bit-identical to
    /// the uninterrupted run's.
    pub fn resume(snapshot: CheckerSnapshot) -> Self {
        let CheckerSnapshot { engine, keys, .. } = snapshot;
        let mut engine = engine;
        engine.graph.rebuild_index();
        IncrementalChecker {
            engine,
            keys: KeyState::merge(keys),
        }
    }

    /// Seeds the stream with the initial transaction `⊥T` writing
    /// [`INIT_VALUE`] to `keys`, exactly like
    /// [`mtc_history::HistoryBuilder::with_init_keys`].
    pub fn with_init_keys<K: Into<Key>, I: IntoIterator<Item = K>>(mut self, keys: I) -> Self {
        assert_eq!(self.engine.txn_count, 0, "⊥T must be the first transaction");
        let ops = keys
            .into_iter()
            .map(|k| Op::Write {
                key: k.into(),
                value: INIT_VALUE,
            })
            .collect();
        let init = Transaction {
            id: TxnId(0),
            session: SessionId::INIT,
            ops,
            status: TxnStatus::Committed,
            begin: Some(0),
            end: Some(0),
        };
        self.feed(init, true);
        self
    }

    /// Feeds the next transaction of the stream (committed or aborted). The
    /// transaction is assigned the next dense id, mirroring
    /// [`mtc_history::HistoryBuilder`] numbering.
    ///
    /// Returns the streaming status for the consumed prefix, or the error
    /// that took the input outside the checker's domain. Both violations and
    /// errors latch: later pushes are cheap no-ops returning the same answer.
    pub fn push(&mut self, mut txn: Transaction) -> Result<StreamStatus, CheckError> {
        txn.id = TxnId(self.engine.txn_count as u32);
        self.feed(txn, false);
        self.status_result()
    }

    /// Convenience: feeds a committed transaction.
    pub fn push_committed(
        &mut self,
        session: u32,
        ops: Vec<Op>,
    ) -> Result<StreamStatus, CheckError> {
        let txn = Transaction::committed(TxnId(0), SessionId(session), ops);
        self.push(txn)
    }

    /// Convenience: feeds an aborted transaction (participates in
    /// `ABORTEDREAD` provenance, contributes no edges).
    pub fn push_aborted(&mut self, session: u32, ops: Vec<Op>) -> Result<StreamStatus, CheckError> {
        let txn = Transaction::aborted(TxnId(0), SessionId(session), ops);
        self.push(txn)
    }

    /// Convenience: feeds a committed transaction with wall-clock begin and
    /// commit-acknowledgement instants (the inputs of the SSER time-chain;
    /// ignored by SER/SI checkers).
    pub fn push_committed_timed(
        &mut self,
        session: u32,
        ops: Vec<Op>,
        begin: u64,
        end: u64,
    ) -> Result<StreamStatus, CheckError> {
        let txn = Transaction::committed(TxnId(0), SessionId(session), ops).with_times(begin, end);
        self.push(txn)
    }

    /// Replays a complete [`mtc_history::History`] in transaction-id order:
    /// seeds `⊥T` first when the history has one (the checker must be empty
    /// in that case) and pushes every other transaction. This is the single
    /// replay path shared by [`check_streaming`] and `mtc-runner`.
    pub fn push_history(
        &mut self,
        history: &mtc_history::History,
    ) -> Result<StreamStatus, CheckError> {
        if let Some(init) = history.init_txn() {
            assert_eq!(
                self.engine.txn_count, 0,
                "a history with ⊥T can only be replayed into an empty checker"
            );
            self.feed(history.txn(init).clone(), true);
        }
        for txn in history.txns() {
            if Some(txn.id) == history.init_txn() {
                continue;
            }
            let _ = self.push(txn.clone());
        }
        self.status_result()
    }

    fn feed(&mut self, txn: Transaction, is_init: bool) {
        if self.engine.done() {
            self.engine.txn_count += 1;
            return;
        }
        let ingest_timer = obs_ingest_timer();
        let work = decompose(&txn, is_init);
        let mut events = self.engine.admit(&txn, is_init);
        let opts = self.engine.opts;
        self.keys.derive(
            &work,
            |_| true,
            divergence_pass(self.engine.level, &opts),
            self.engine.has_init,
            opts.validate_mt,
            opts.prescan_intra,
            &mut events,
        );
        events.sort_by_key(|e| (e.pass, e.key_rank, e.seq));
        for e in events {
            self.engine.apply(txn.id, e.event);
        }
        if self.engine.gc_due() {
            let gc_timer = mtc_obs::enabled().then(std::time::Instant::now);
            let watermark = self.engine.gc_watermark();
            let cap = self.engine.gc.map_or(0, |g| g.reader_cap);
            self.keys.sweep(watermark, cap);
            if self.engine.begin_epoch() {
                let before = gc_timer.is_some().then(|| self.live_node_count());
                let refs = self.keys.refs();
                self.engine.collect(watermark, &refs);
                if let Some(before) = before {
                    mtc_obs::histogram!("checker.gc_reclaimed_nodes")
                        .record(before.saturating_sub(self.live_node_count()) as u64);
                }
            }
            if let Some(t0) = gc_timer {
                mtc_obs::histogram!("checker.gc_epoch_micros")
                    .record(t0.elapsed().as_micros() as u64);
            }
        }
        if let Some(t0) = ingest_timer {
            mtc_obs::histogram!("checker.ingest_txn_micros")
                .record(t0.elapsed().as_micros() as u64);
        }
    }

    fn status_result(&self) -> Result<StreamStatus, CheckError> {
        if let Some(e) = &self.engine.error {
            return Err(e.clone());
        }
        if self.engine.violation.is_some() {
            Ok(StreamStatus::Violated)
        } else {
            Ok(StreamStatus::ConsistentSoFar)
        }
    }

    /// The latched violation, if any.
    pub fn violation(&self) -> Option<&Violation> {
        self.engine.violation.as_ref()
    }

    /// True iff the consumed prefix already violates the isolation level.
    pub fn is_violated(&self) -> bool {
        self.engine.violation.is_some()
    }

    /// Id of the transaction whose consumption latched the violation — the
    /// basis of the time-to-first-violation metric.
    pub fn first_violation_at(&self) -> Option<TxnId> {
        self.engine.violated_at
    }

    /// Number of transactions consumed (including `⊥T` and aborted ones).
    pub fn txn_count(&self) -> usize {
        self.engine.txn_count
    }

    /// Number of labelled dependency edges derived so far.
    pub fn edge_count(&self) -> usize {
        self.engine.graph.edge_count()
    }

    /// Number of distinct begin/commit instants spliced into the SSER
    /// time-chain so far (always 0 for SER/SI).
    pub fn time_instant_count(&self) -> usize {
        self.engine.chain.len()
    }

    /// The dependency graph grown so far (for inspection / reporting).
    pub fn graph(&self) -> &DependencyGraph {
        &self.engine.graph
    }

    /// The isolation level being enforced.
    pub fn level(&self) -> IsolationLevel {
        self.engine.level
    }

    /// The options in effect.
    pub fn options(&self) -> &CheckOptions {
        &self.engine.opts
    }

    /// Ends the stream: settles reads still waiting for a writer (they can
    /// no longer be satisfied) and returns the final verdict, which agrees
    /// with the batch checkers on the equivalent [`mtc_history::History`].
    pub fn finish(mut self) -> Result<Verdict, CheckError> {
        if let Some(e) = self.engine.error {
            return Err(e);
        }
        if let Some(v) = self.engine.violation {
            return Ok(Verdict::Violated(v));
        }
        if self.engine.opts.prescan_intra {
            let pending = self.keys.drain_pending();
            if !pending.is_empty() {
                let violations: Vec<IntraViolation> = pending
                    .iter()
                    .map(|p| self.keys.classify_settled(p))
                    .collect();
                return Ok(Verdict::Violated(Violation::Intra(violations)));
            }
        } else {
            // Without the pre-scan, an unreadable value is a domain error,
            // exactly as in `BUILDDEPENDENCY`.
            let pending = self.keys.drain_pending();
            if let Some(p) = pending.first() {
                return Err(CheckError::UnreadableValue {
                    txn: p.txn,
                    key: p.key,
                    value: p.value,
                });
            }
        }
        Ok(Verdict::Satisfied)
    }
}

// ───────────────────────── the SSER checker ─────────────────────────────────

/// An online strict-serializability checker: an [`IncrementalChecker`] in
/// SSER mode behind a timestamp-first API.
///
/// Each committed transaction is pushed together with its wall-clock begin
/// and commit-acknowledgement instants; the checker splices the instants
/// into an online time-chain ([`mtc_history::TimeChain`]) and latches a
/// violation the moment a dependency edge contradicts the real-time order —
/// including commits whose instants arrive out of order (clock skew,
/// long-running transactions). Reads whose writer has not appeared yet are
/// the only thing deferred to [`IncrementalSserChecker::finish`], exactly as
/// for SER/SI, so final verdicts agree with [`crate::check_sser`] and
/// [`crate::check_sser_naive`].
///
/// ```
/// use mtc_core::{IncrementalSserChecker, StreamStatus};
/// use mtc_history::Op;
///
/// let mut checker = IncrementalSserChecker::new().with_init_keys(0..1u64);
/// // T1 = [10, 20] installs x = 7 ...
/// checker
///     .push_committed(0, vec![Op::read(0u64, 0u64), Op::write(0u64, 7u64)], 10, 20)
///     .unwrap();
/// // ... and T2 = [30, 40] starts after T1 finished but misses its write.
/// let status = checker
///     .push_committed(1, vec![Op::read(0u64, 0u64)], 30, 40)
///     .unwrap();
/// assert_eq!(status, StreamStatus::Violated);
/// assert!(checker.finish().unwrap().is_violated());
/// ```
#[derive(Clone, Debug)]
pub struct IncrementalSserChecker {
    inner: IncrementalChecker,
}

impl Default for IncrementalSserChecker {
    fn default() -> Self {
        IncrementalSserChecker::new()
    }
}

impl IncrementalSserChecker {
    /// A streaming `CHECKSSER` with default [`CheckOptions`].
    pub fn new() -> Self {
        IncrementalSserChecker {
            inner: IncrementalChecker::new_sser(),
        }
    }

    /// Overrides the tuning options (shared with the batch checkers).
    pub fn with_options(mut self, opts: CheckOptions) -> Self {
        self.inner = self.inner.with_options(opts);
        self
    }

    /// Seeds the stream with `⊥T` at instant 0 (see
    /// [`IncrementalChecker::with_init_keys`]).
    pub fn with_init_keys<K: Into<Key>, I: IntoIterator<Item = K>>(mut self, keys: I) -> Self {
        self.inner = self.inner.with_init_keys(keys);
        self
    }

    /// Feeds the next transaction of the stream. Transactions without any
    /// recorded instant contribute no real-time constraints; a partially
    /// timed one constrains the side it has.
    pub fn push(&mut self, txn: Transaction) -> Result<StreamStatus, CheckError> {
        self.inner.push(txn)
    }

    /// Feeds a committed transaction with its begin/commit instants.
    pub fn push_committed(
        &mut self,
        session: u32,
        ops: Vec<Op>,
        begin: u64,
        end: u64,
    ) -> Result<StreamStatus, CheckError> {
        self.inner.push_committed_timed(session, ops, begin, end)
    }

    /// Feeds an aborted transaction (no time-chain hook: aborted
    /// transactions never constrain the real-time order).
    pub fn push_aborted(&mut self, session: u32, ops: Vec<Op>) -> Result<StreamStatus, CheckError> {
        self.inner.push_aborted(session, ops)
    }

    /// Replays a complete [`mtc_history::History`] in transaction-id order
    /// (see [`IncrementalChecker::push_history`]).
    pub fn push_history(
        &mut self,
        history: &mtc_history::History,
    ) -> Result<StreamStatus, CheckError> {
        self.inner.push_history(history)
    }

    /// The latched violation, if any.
    pub fn violation(&self) -> Option<&Violation> {
        self.inner.violation()
    }

    /// True iff the consumed prefix already violates SSER.
    pub fn is_violated(&self) -> bool {
        self.inner.is_violated()
    }

    /// Id of the transaction whose consumption latched the violation.
    pub fn first_violation_at(&self) -> Option<TxnId> {
        self.inner.first_violation_at()
    }

    /// Number of transactions consumed (including `⊥T` and aborted ones).
    pub fn txn_count(&self) -> usize {
        self.inner.txn_count()
    }

    /// Number of labelled dependency edges derived so far.
    pub fn edge_count(&self) -> usize {
        self.inner.edge_count()
    }

    /// Number of distinct instants in the online time-chain.
    pub fn time_instant_count(&self) -> usize {
        self.inner.time_instant_count()
    }

    /// The options in effect.
    pub fn options(&self) -> &CheckOptions {
        self.inner.options()
    }

    /// Ends the stream and returns the final verdict, which agrees with
    /// [`crate::check_sser`] on the equivalent history.
    pub fn finish(self) -> Result<Verdict, CheckError> {
        self.inner.finish()
    }
}

/// Runs a complete [`mtc_history::History`] through an
/// [`IncrementalChecker`] in transaction-id order — the drop-in streaming
/// replacement for [`crate::check_ser`] / [`crate::check_si`] /
/// [`crate::check_sser`].
pub fn check_streaming(
    level: IsolationLevel,
    history: &mtc_history::History,
) -> Result<Verdict, CheckError> {
    check_streaming_with(level, history, &CheckOptions::default())
}

/// [`check_streaming`] with explicit options.
pub fn check_streaming_with(
    level: IsolationLevel,
    history: &mtc_history::History,
    opts: &CheckOptions,
) -> Result<Verdict, CheckError> {
    let mut checker = IncrementalChecker::new(level).with_options(*opts);
    let _ = checker.push_history(history);
    checker.finish()
}

/// Runs a complete history through a [`ShardedIncrementalChecker`], feeding
/// it in batches of `batch` transactions across `shards` workers.
pub fn check_streaming_sharded(
    level: IsolationLevel,
    history: &mtc_history::History,
    shards: usize,
    batch: usize,
) -> Result<Verdict, CheckError> {
    let mut checker = ShardedIncrementalChecker::new(level, shards);
    let _ = checker.push_history(history, batch);
    checker.finish()
}

// ───────────────────────── sharded checker ──────────────────────────────────

/// Key-sharded streaming checker: per-key edge derivation fans out across a
/// pool of persistent worker threads (one per shard, each owning the key
/// state of its shard), and the resulting events merge into the shared
/// topological order in canonical `(transaction, pass, key)` order — so
/// verdicts are identical to [`IncrementalChecker`]'s by construction.
///
/// Feed it batches with [`ShardedIncrementalChecker::push_batch`]; larger
/// batches amortize the per-batch hand-off to the pool. With one shard no
/// threads are spawned and the behaviour degenerates to the sequential
/// checker.
#[derive(Debug)]
pub struct ShardedIncrementalChecker {
    engine: Engine,
    pool: ShardPool,
    /// Cumulative reader-eviction count last reported by each worker
    /// (updated at every collect; see [`GcPolicy`]'s reader-cap contract).
    worker_evictions: Vec<u64>,
}

fn shard_of(key: Key, shards: usize) -> usize {
    // Multiplicative hash so that striped and clustered key spaces spread.
    (key.raw().wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 33) as usize % shards
}

/// One batch of decomposed transactions plus the option snapshot the workers
/// need to derive events for it.
struct BatchJob {
    works: Vec<TxnWork>,
    divergence_pass: Option<u8>,
    has_init: bool,
    validate_mt: bool,
    prescan: bool,
    /// How the workers turn local structure into early-latch hints.
    hints: HintMode,
}

/// How a shard's pre-filter derives early-latch hints from its local edges.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum HintMode {
    /// SER/SSER: a cycle in the shard's local dependency order is already a
    /// violation (the local edge set is a subset of the global one).
    Direct,
    /// SI: violations live in the *composed* graph, so the shard maintains
    /// its local `(WR ∪ WW) ; RW?` fragment — compositions of its own base
    /// and RW edges, a subset of the global composed edge set — and hints
    /// when a fragment edge closes a cycle there.
    Composed,
}

enum ShardMsg {
    Batch(std::sync::Arc<BatchJob>),
    /// Run the settled-prefix sweep at the given watermark (second field:
    /// the policy's reader-list cap). The third field asks the shard to
    /// materialize and reply with the transactions it still references —
    /// set only at collection-commit epochs; the sweeps in between reply
    /// with an empty set (the merge thread still needs the eviction count).
    Collect(TxnId, usize, bool),
    /// Clone and return the shard's key state (checkpointing).
    Snapshot,
    /// Replace the shard's key state (resuming from a checkpoint).
    Restore(Box<KeyState>),
    /// End of stream: drain and classify the shard's pending reads.
    Finish,
}

enum ShardReply {
    /// Per transaction of the batch, the shard's tagged events (duplicates
    /// already filtered), plus the batch index of the first transaction
    /// whose edges closed a cycle in the shard's *local* order, if any.
    Events(Vec<Vec<TaggedEvent>>, Option<usize>),
    /// Transactions still referenced by the shard, plus the shard's
    /// cumulative reader-eviction count (reply to [`ShardMsg::Collect`]).
    Refs(HashSet<TxnId>, u64),
    /// The shard's key state (reply to [`ShardMsg::Snapshot`]).
    State(Box<KeyState>),
    /// Settled pending reads, classified (reply to [`ShardMsg::Finish`]).
    Settled(Vec<IntraViolation>),
}

/// Per-worker pre-filter: a local Pearce–Kelly order over the shard's own
/// edges plus a dedup set of the add-if-absent edges already forwarded.
///
/// * Duplicate `dedup` edges are dropped before the hand-off. Every RW edge
///   of a key is derived by the single shard owning that key, so the local
///   set sees exactly what the merge thread's graph would see — the merge
///   outcome is unchanged, the channel traffic and merge work shrink.
/// * An edge that closes a cycle in the local order certifies a violation
///   no later than the transaction being derived (the local edge set is a
///   subset of the global one — at SI the local *composed fragment* is a
///   subset of the global composed edge set). The worker reports the
///   transaction's batch index as a *hint*; the merge thread flushes its
///   deferred queue right after that transaction, latching the violation
///   without collecting or merging the rest of the batch.
#[derive(Debug, Default)]
struct ShardPrefilter {
    /// SER/SSER: the local dependency order. SI: the local *composed*
    /// order (nodes still keyed by transaction via `node_of`).
    topo: IncrementalTopo,
    node_of: HashMap<TxnId, usize>,
    forwarded: HashSet<(TxnId, TxnId, EdgeKind)>,
    /// SI fragment state: sources of the shard's base (WR/WW) edges into a
    /// transaction, mirroring the merge engine's `base_in`.
    base_in: HashMap<TxnId, Vec<TxnId>>,
    /// SI fragment state: targets of the shard's RW edges out of a
    /// transaction, mirroring the merge engine's `rw_out`.
    rw_out: HashMap<TxnId, Vec<TxnId>>,
    /// Composed pairs already inserted into the local order (first
    /// provenance wins, like the merge engine's `ProvMap`).
    composed: HashSet<(TxnId, TxnId)>,
}

impl ShardPrefilter {
    /// Filters one transaction's events in place; true iff an edge closed a
    /// cycle in the local (direct or composed) order.
    fn filter(&mut self, events: &mut Vec<TaggedEvent>, mode: HintMode) -> bool {
        let mut local_cycle = false;
        let (mut dropped, mut forwarded) = (0u64, 0u64);
        events.retain(|e| {
            let Event::Edge {
                from,
                to,
                kind,
                dedup,
            } = e.event
            else {
                return true;
            };
            if dedup && !self.forwarded.insert((from, to, kind)) {
                dropped += 1;
                return false;
            }
            let hit = match mode {
                HintMode::Direct => {
                    let u = self.node(from);
                    let v = self.node(to);
                    self.topo.try_add_edge(u, v).is_err()
                }
                HintMode::Composed => self.compose_local(from, to, kind),
            };
            local_cycle |= hit;
            forwarded += 1;
            true
        });
        // Pre-filter hit rate = dropped / (dropped + forwarded): the share
        // of derived edges the workers kept off the merge thread.
        mtc_obs::counter!("checker.prefilter_dropped_edges").add(dropped);
        mtc_obs::counter!("checker.prefilter_forwarded_edges").add(forwarded);
        if local_cycle {
            mtc_obs::counter!("checker.prefilter_cycle_hints").add(1);
        }
        local_cycle
    }

    /// Extends the local composed fragment with one shard-derived edge,
    /// mirroring the merge engine's `apply_si_edge` over shard-local state:
    /// a base (WR/WW) edge enters composed both bare and extended by every
    /// known RW suffix; an RW edge extends every known base into its
    /// source. True iff a new composed pair closed a cycle locally.
    fn compose_local(&mut self, from: TxnId, to: TxnId, kind: EdgeKind) -> bool {
        match kind {
            EdgeKind::So | EdgeKind::Wr(_) | EdgeKind::Ww(_) => {
                let mut cycle = self.composed_pair(from, to);
                if let Some(suffixes) = self.rw_out.get(&to) {
                    for c in suffixes.clone() {
                        cycle |= self.composed_pair(from, c);
                    }
                }
                self.base_in.entry(to).or_default().push(from);
                cycle
            }
            EdgeKind::Rw(_) => {
                let mut cycle = false;
                if let Some(bases) = self.base_in.get(&from) {
                    for a in bases.clone() {
                        cycle |= self.composed_pair(a, to);
                    }
                }
                self.rw_out.entry(from).or_default().push(to);
                cycle
            }
            EdgeKind::Rt => false,
        }
    }

    /// Inserts one composed pair into the local order (first occurrence
    /// only); true iff it closed a cycle there.
    fn composed_pair(&mut self, a: TxnId, c: TxnId) -> bool {
        if !self.composed.insert((a, c)) {
            return false;
        }
        let u = self.node(a);
        let v = self.node(c);
        self.topo.try_add_edge(u, v).is_err()
    }

    fn node(&mut self, txn: TxnId) -> usize {
        match self.node_of.get(&txn) {
            Some(&n) => n,
            None => {
                let n = self.topo.add_node();
                self.node_of.insert(txn, n);
                n
            }
        }
    }

    /// Shrinks the pre-filter at a GC watermark. The local order and the SI
    /// fragment are rebuilt empty (they only power early-latch *hints*,
    /// never verdicts) and the dedup set keeps only pairs with a live
    /// endpoint — retired versions can never re-derive their RW edges, and
    /// the merge thread re-checks duplicates against its graph anyway.
    fn trim(&mut self, watermark: TxnId) {
        self.topo = IncrementalTopo::new();
        self.node_of = HashMap::new();
        self.base_in = HashMap::new();
        self.rw_out = HashMap::new();
        self.composed = HashSet::new();
        self.forwarded
            .retain(|&(from, to, _)| from >= watermark || to >= watermark);
    }
}

#[derive(Debug)]
struct ShardWorker {
    tx: Option<std::sync::mpsc::Sender<ShardMsg>>,
    rx: std::sync::mpsc::Receiver<ShardReply>,
    handle: Option<std::thread::JoinHandle<()>>,
}

#[derive(Debug)]
enum ShardPool {
    /// Single shard: derive inline, no threads.
    Inline(Box<KeyState>),
    Workers {
        workers: Vec<ShardWorker>,
        /// One clone per live worker thread; lets the pool (and its tests)
        /// observe that every thread has actually exited after a shutdown.
        alive: std::sync::Arc<()>,
    },
}

impl ShardPool {
    fn new(shards: usize) -> Self {
        if shards == 1 {
            return ShardPool::Inline(Box::default());
        }
        let alive = std::sync::Arc::new(());
        let workers = (0..shards)
            .map(|s| {
                let (tx, worker_rx) = std::sync::mpsc::channel::<ShardMsg>();
                let (reply_tx, rx) = std::sync::mpsc::channel::<ShardReply>();
                let token = alive.clone();
                let handle = std::thread::Builder::new()
                    .name(format!("mtc-shard-{s}"))
                    .spawn(move || {
                        let _token = token; // dropped when the thread exits
                        let mut state = KeyState::default();
                        let mut prefilter = ShardPrefilter::default();
                        while let Ok(msg) = worker_rx.recv() {
                            match msg {
                                ShardMsg::Batch(job) => {
                                    let mut hint: Option<usize> = None;
                                    let events: Vec<Vec<TaggedEvent>> = job
                                        .works
                                        .iter()
                                        .enumerate()
                                        .map(|(i, w)| {
                                            let mut out = Vec::new();
                                            state.derive(
                                                w,
                                                |k| shard_of(k, shards) == s,
                                                job.divergence_pass,
                                                job.has_init,
                                                job.validate_mt,
                                                job.prescan,
                                                &mut out,
                                            );
                                            if prefilter.filter(&mut out, job.hints)
                                                && hint.is_none()
                                            {
                                                hint = Some(i);
                                            }
                                            out
                                        })
                                        .collect();
                                    if reply_tx.send(ShardReply::Events(events, hint)).is_err() {
                                        break;
                                    }
                                }
                                ShardMsg::Collect(watermark, reader_cap, want_refs) => {
                                    state.sweep(watermark, reader_cap);
                                    prefilter.trim(watermark);
                                    let refs = if want_refs {
                                        state.refs()
                                    } else {
                                        HashSet::new()
                                    };
                                    let evicted = state.evicted.values().sum();
                                    if reply_tx.send(ShardReply::Refs(refs, evicted)).is_err() {
                                        break;
                                    }
                                }
                                ShardMsg::Snapshot => {
                                    let boxed = Box::new(state.clone());
                                    if reply_tx.send(ShardReply::State(boxed)).is_err() {
                                        break;
                                    }
                                }
                                ShardMsg::Restore(new_state) => {
                                    state = *new_state;
                                    prefilter = ShardPrefilter::default();
                                }
                                ShardMsg::Finish => {
                                    let settled = state
                                        .drain_pending()
                                        .iter()
                                        .map(|p| state.classify_settled(p))
                                        .collect();
                                    let _ = reply_tx.send(ShardReply::Settled(settled));
                                    break;
                                }
                            }
                        }
                    })
                    .expect("failed to spawn shard worker");
                ShardWorker {
                    tx: Some(tx),
                    rx,
                    handle: Some(handle),
                }
            })
            .collect();
        ShardPool::Workers { workers, alive }
    }

    fn shard_count(&self) -> usize {
        match self {
            ShardPool::Inline(_) => 1,
            ShardPool::Workers { workers, .. } => workers.len(),
        }
    }

    /// Shuts the pool down deterministically: closes every job channel first
    /// (so all workers see end-of-stream at once, even mid-batch), then
    /// joins every thread. Idempotent; also run on drop, so a checker
    /// abandoned mid-stream — e.g. `stop_on_violation` firing before
    /// `finish()` — never leaks worker threads.
    fn shutdown(&mut self) {
        if let ShardPool::Workers { workers, .. } = self {
            for w in workers.iter_mut() {
                w.tx.take();
            }
            for w in workers.iter_mut() {
                if let Some(h) = w.handle.take() {
                    let _ = h.join();
                }
            }
        }
    }
}

impl Drop for ShardPool {
    fn drop(&mut self) {
        self.shutdown();
    }
}

impl ShardedIncrementalChecker {
    /// A sharded streaming checker for `level` over `shards` workers. In
    /// SSER mode the per-key derivation is sharded exactly as for SER while
    /// the time-chain lives on the merge thread (workers never see
    /// timestamps), so verdicts stay identical to the sequential checker's.
    ///
    /// # Panics
    ///
    /// Panics when `shards == 0`.
    pub fn new(level: IsolationLevel, shards: usize) -> Self {
        assert!(shards > 0, "at least one shard is required");
        ShardedIncrementalChecker {
            engine: Engine::new(level, CheckOptions::default()),
            pool: ShardPool::new(shards),
            worker_evictions: Vec::new(),
        }
    }

    /// A sharded streaming checker with the shard count picked by the
    /// autotuner for this machine ([`tune::tune`]); pair it with
    /// [`tune::ShardTuning::batch`] when feeding batches.
    pub fn new_tuned(level: IsolationLevel) -> Self {
        ShardedIncrementalChecker::new(level, tune::tune().shards)
    }

    /// Overrides the tuning options (shared with the batch checkers).
    pub fn with_options(mut self, opts: CheckOptions) -> Self {
        self.engine.opts = opts;
        self
    }

    /// Enables settled-prefix garbage collection (see [`GcPolicy`]).
    /// Collections run on the merge thread at batch boundaries; the shard
    /// workers sweep their key states at the same watermark.
    pub fn with_gc(mut self, policy: GcPolicy) -> Self {
        self.set_gc(policy);
        self
    }

    /// Non-consuming form of [`ShardedIncrementalChecker::with_gc`].
    pub fn set_gc(&mut self, policy: GcPolicy) {
        self.engine.gc = Some(policy.normalized());
    }

    /// The garbage-collection policy in effect, if any.
    pub fn gc_policy(&self) -> Option<GcPolicy> {
        self.engine.gc
    }

    /// Number of transactions currently resident (not retired by the GC).
    pub fn live_txn_count(&self) -> usize {
        self.engine.live_txns.len()
    }

    /// Number of live nodes in the maintained order(s) (see
    /// [`IncrementalChecker::live_node_count`]).
    pub fn live_node_count(&self) -> usize {
        self.engine
            .topo
            .live_node_count()
            .max(self.engine.composed.live_node_count())
    }

    /// Total reader entries dropped by the GC's reader-list cap across all
    /// shards, as of the most recent collection (per-version markers are
    /// available from the [`ShardedIncrementalChecker::checkpoint`]
    /// snapshot's [`CheckerSnapshot::reader_evictions`]).
    pub fn reader_eviction_count(&self) -> u64 {
        match &self.pool {
            ShardPool::Inline(state) => state.evicted.values().sum(),
            ShardPool::Workers { .. } => self.worker_evictions.iter().sum(),
        }
    }

    /// Transactions retired by the GC so far.
    pub fn pruned_txn_count(&self) -> usize {
        self.engine.pruned_txns
    }

    /// Captures a complete [`CheckerSnapshot`]: the merge-side engine plus
    /// every shard's key state (collected from the worker pool). The
    /// deferred queue is empty at batch boundaries, so the snapshot is
    /// exact.
    pub fn checkpoint(&mut self) -> CheckerSnapshot {
        let keys: Vec<KeyState> = match &mut self.pool {
            ShardPool::Inline(state) => vec![(**state).clone()],
            ShardPool::Workers { workers, .. } => {
                for w in workers.iter() {
                    w.tx.as_ref()
                        .expect("pool already shut down")
                        .send(ShardMsg::Snapshot)
                        .expect("shard worker hung up");
                }
                workers
                    .iter()
                    .map(|w| match w.rx.recv().expect("shard worker hung up") {
                        ShardReply::State(s) => *s,
                        _ => unreachable!("snapshot reply out of order"),
                    })
                    .collect()
            }
        };
        CheckerSnapshot {
            version: SNAPSHOT_VERSION,
            shards: keys.len(),
            engine: self.engine.clone(),
            keys,
        }
    }

    /// Reconstructs a sharded checker over `shards` workers from a snapshot
    /// (whatever geometry took it — key states are re-partitioned along the
    /// worker split). Verdicts continue bit-identically to the
    /// uninterrupted run.
    pub fn resume(snapshot: CheckerSnapshot, shards: usize) -> Self {
        assert!(shards > 0, "at least one shard is required");
        let CheckerSnapshot { engine, keys, .. } = snapshot;
        let mut engine = engine;
        engine.graph.rebuild_index();
        let states = KeyState::reshard(keys, shards);
        // Seed the per-worker eviction counts from the restored states, so
        // `reader_eviction_count` is correct immediately after a resume
        // rather than only after the next collect.
        let worker_evictions: Vec<u64> = states.iter().map(|s| s.evicted.values().sum()).collect();
        let mut pool = ShardPool::new(shards);
        match &mut pool {
            ShardPool::Inline(slot) => {
                let mut states = states;
                **slot = states.pop().expect("one state per shard");
            }
            ShardPool::Workers { workers, .. } => {
                for (w, state) in workers.iter().zip(states) {
                    w.tx.as_ref()
                        .expect("pool just built")
                        .send(ShardMsg::Restore(Box::new(state)))
                        .expect("shard worker hung up");
                }
            }
        }
        ShardedIncrementalChecker {
            engine,
            pool,
            worker_evictions,
        }
    }

    /// Seeds the stream with `⊥T` (see [`IncrementalChecker::with_init_keys`]).
    pub fn with_init_keys<K: Into<Key>, I: IntoIterator<Item = K>>(mut self, keys: I) -> Self {
        assert_eq!(self.engine.txn_count, 0, "⊥T must be the first transaction");
        let ops: Vec<Op> = keys
            .into_iter()
            .map(|k| Op::Write {
                key: k.into(),
                value: INIT_VALUE,
            })
            .collect();
        let init = Transaction {
            id: TxnId(0),
            session: SessionId::INIT,
            ops,
            status: TxnStatus::Committed,
            begin: Some(0),
            end: Some(0),
        };
        self.consume_batch(vec![(init, true)]);
        self
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.pool.shard_count()
    }

    /// Number of worker threads currently alive (0 for the single-shard
    /// inline pool). Drops to 0 once the pool shuts down — on `finish()` or
    /// drop — which the shutdown tests assert; also handy as a leak check
    /// in long-running harnesses.
    pub fn live_worker_threads(&self) -> usize {
        match &self.pool {
            ShardPool::Inline(_) => 0,
            ShardPool::Workers { alive, .. } => std::sync::Arc::strong_count(alive) - 1,
        }
    }

    /// Feeds one transaction (a batch of one).
    pub fn push(&mut self, txn: Transaction) -> Result<StreamStatus, CheckError> {
        self.push_batch(vec![txn])
    }

    /// Feeds a batch of transactions, in stream order. Edge derivation for
    /// the whole batch runs key-sharded across the workers; the merge into
    /// the topological order happens on the calling thread.
    pub fn push_batch(&mut self, txns: Vec<Transaction>) -> Result<StreamStatus, CheckError> {
        let mut next = self.engine.txn_count as u32;
        let batch: Vec<(Transaction, bool)> = txns
            .into_iter()
            .map(|mut t| {
                t.id = TxnId(next);
                next += 1;
                (t, false)
            })
            .collect();
        self.consume_batch(batch);
        self.status_result()
    }

    /// Replays a complete [`mtc_history::History`] in transaction-id order,
    /// feeding it in batches of `batch` transactions (see
    /// [`IncrementalChecker::push_history`]).
    pub fn push_history(
        &mut self,
        history: &mtc_history::History,
        batch: usize,
    ) -> Result<StreamStatus, CheckError> {
        if let Some(init) = history.init_txn() {
            assert_eq!(
                self.engine.txn_count, 0,
                "a history with ⊥T can only be replayed into an empty checker"
            );
            self.consume_batch(vec![(history.txn(init).clone(), true)]);
        }
        let batch = batch.max(1);
        let mut buf = Vec::with_capacity(batch);
        for txn in history.txns() {
            if Some(txn.id) == history.init_txn() {
                continue;
            }
            buf.push(txn.clone());
            if buf.len() == batch {
                let _ = self.push_batch(std::mem::take(&mut buf));
            }
        }
        if !buf.is_empty() {
            let _ = self.push_batch(buf);
        }
        self.status_result()
    }

    fn consume_batch(&mut self, batch: Vec<(Transaction, bool)>) {
        if batch.is_empty() {
            return;
        }
        if self.engine.done() {
            self.engine.txn_count += batch.len();
            return;
        }
        let batch_timer = mtc_obs::enabled().then(std::time::Instant::now);
        let batch_len = batch.len();
        let works: Vec<TxnWork> = batch.iter().map(|(t, i)| decompose(t, *i)).collect();
        let div_pass = divergence_pass(self.engine.level, &self.engine.opts);
        let has_init = self.engine.has_init || batch[0].1;
        let (validate_mt, prescan) = (self.engine.opts.validate_mt, self.engine.opts.prescan_intra);
        let hints = if self.engine.level == IsolationLevel::SnapshotIsolation {
            HintMode::Composed
        } else {
            HintMode::Direct
        };

        // Decide the epoch boundary up front: `txn_count` always advances by
        // the whole batch (a mid-merge latch still counts the tail as
        // consumed), so the post-batch watermark is known before the merge
        // starts — which lets the workers run their sweep *concurrently
        // with* the merge instead of serialized after it.
        let gc_fire: Option<(TxnId, usize, bool)> = match self.engine.gc {
            Some(p) if self.engine.txn_count + batch.len() - self.engine.last_gc >= p.every => {
                let total = self.engine.txn_count + batch.len();
                Some((
                    TxnId(total.saturating_sub(p.window) as u32),
                    p.reader_cap,
                    self.engine.commit_epoch_next(),
                ))
            }
            _ => None,
        };

        // Fan the per-key derivation out across the shard pool. Each worker
        // walks the whole batch but only touches the keys it owns, so the
        // shard states never alias. Workers pre-filter duplicate edges and
        // latch intra-shard cycles in their local orders, reporting the
        // earliest affected transaction as a hint.
        let mut hint: Option<usize> = None;
        let mut per_shard_events: Vec<Vec<Vec<TaggedEvent>>> = match &mut self.pool {
            ShardPool::Inline(state) => {
                vec![works
                    .iter()
                    .map(|w| {
                        let mut out = Vec::new();
                        state.derive(
                            w,
                            |_| true,
                            div_pass,
                            has_init,
                            validate_mt,
                            prescan,
                            &mut out,
                        );
                        out
                    })
                    .collect()]
            }
            ShardPool::Workers { workers, .. } => {
                let job = std::sync::Arc::new(BatchJob {
                    works,
                    divergence_pass: div_pass,
                    has_init,
                    validate_mt,
                    prescan,
                    hints,
                });
                for w in workers.iter() {
                    w.tx.as_ref()
                        .expect("pool already shut down")
                        .send(ShardMsg::Batch(job.clone()))
                        .expect("shard worker hung up");
                }
                workers
                    .iter()
                    .map(|w| match w.rx.recv().expect("shard worker hung up") {
                        ShardReply::Events(events, shard_hint) => {
                            hint = match (hint, shard_hint) {
                                (Some(a), Some(b)) => Some(a.min(b)),
                                (a, b) => a.or(b),
                            };
                            events
                        }
                        _ => unreachable!("batch reply out of order"),
                    })
                    .collect()
            }
        };

        // Overlap the sweep with the merge: a worker's Events reply means it
        // has fully derived the batch, so sending Collect now preserves the
        // per-shard derive-then-sweep order while the sweep itself runs
        // concurrently with the merge below. The refs replies are received
        // after the merge — unconditionally, to keep the channel protocol
        // in lock-step even when the merge latches a verdict.
        if let Some((watermark, cap, want_refs)) = gc_fire {
            if let ShardPool::Workers { workers, .. } = &self.pool {
                for w in workers.iter() {
                    w.tx.as_ref()
                        .expect("pool already shut down")
                        .send(ShardMsg::Collect(watermark, cap, want_refs))
                        .expect("shard worker hung up");
                }
            }
        }

        // Merge: per transaction, admit it sequentially, then queue the
        // shard events in canonical (pass, key_rank, seq) order. Edges
        // accumulate across transactions and hit the topological order in
        // one batched insertion per flush. A worker hint forces the flush
        // right after the hinted transaction — its local cycle guarantees
        // the latch, so the rest of the batch is skipped.
        let mut merged_events = 0u64;
        for (i, (txn, is_init)) in batch.iter().enumerate() {
            if self.engine.done() {
                self.engine.txn_count += batch.len() - i;
                break;
            }
            let mut events = self.engine.admit(txn, *is_init);
            for shard_events in per_shard_events.iter_mut() {
                events.append(&mut shard_events[i]);
            }
            events.sort_by_key(|e| (e.pass, e.key_rank, e.seq));
            merged_events += events.len() as u64;
            for e in events {
                self.engine.apply_deferred(txn.id, e.event);
            }
            if hint == Some(i) {
                self.engine.flush_deferred();
                debug_assert!(
                    self.engine.done(),
                    "a worker-local cycle must latch at the hinted transaction"
                );
            }
        }
        self.engine.flush_deferred();
        if let Some((watermark, cap, want_refs)) = gc_fire {
            // The merge-side view of the epoch: waiting for the workers'
            // (concurrent) sweeps plus the graph collection — i.e. the GC
            // time the ingest path actually pays.
            let gc_timer = mtc_obs::enabled().then(std::time::Instant::now);
            let refs: HashSet<TxnId> = match &mut self.pool {
                ShardPool::Inline(state) => {
                    state.sweep(watermark, cap);
                    if want_refs {
                        state.refs()
                    } else {
                        HashSet::new()
                    }
                }
                ShardPool::Workers { workers, .. } => {
                    let mut refs = HashSet::new();
                    self.worker_evictions.resize(workers.len(), 0);
                    for (i, w) in workers.iter().enumerate() {
                        match w.rx.recv().expect("shard worker hung up") {
                            ShardReply::Refs(r, evicted) => {
                                refs.extend(r);
                                self.worker_evictions[i] = evicted;
                            }
                            _ => unreachable!("collect reply out of order"),
                        }
                    }
                    refs
                }
            };
            if self.engine.begin_epoch() && !self.engine.done() {
                let before = gc_timer.is_some().then(|| self.live_node_count());
                self.engine.collect(watermark, &refs);
                if let Some(before) = before {
                    mtc_obs::histogram!("checker.gc_reclaimed_nodes")
                        .record(before.saturating_sub(self.live_node_count()) as u64);
                }
            }
            if let Some(t0) = gc_timer {
                mtc_obs::histogram!("checker.gc_epoch_micros")
                    .record(t0.elapsed().as_micros() as u64);
            }
        }
        if let Some(t0) = batch_timer {
            mtc_obs::histogram!("checker.ingest_batch_micros")
                .record(t0.elapsed().as_micros() as u64);
            mtc_obs::histogram!("checker.ingest_batch_txns").record(batch_len as u64);
            mtc_obs::histogram!("checker.merge_queue_depth").record(merged_events);
        }
    }

    fn status_result(&self) -> Result<StreamStatus, CheckError> {
        if let Some(e) = &self.engine.error {
            return Err(e.clone());
        }
        if self.engine.violation.is_some() {
            Ok(StreamStatus::Violated)
        } else {
            Ok(StreamStatus::ConsistentSoFar)
        }
    }

    /// The latched violation, if any.
    pub fn violation(&self) -> Option<&Violation> {
        self.engine.violation.as_ref()
    }

    /// True iff the consumed prefix already violates the isolation level.
    pub fn is_violated(&self) -> bool {
        self.engine.violation.is_some()
    }

    /// Id of the transaction whose consumption latched the violation.
    pub fn first_violation_at(&self) -> Option<TxnId> {
        self.engine.violated_at
    }

    /// Number of transactions consumed.
    pub fn txn_count(&self) -> usize {
        self.engine.txn_count
    }

    /// Number of labelled dependency edges derived so far.
    pub fn edge_count(&self) -> usize {
        self.engine.graph.edge_count()
    }

    /// Ends the stream and returns the final verdict (see
    /// [`IncrementalChecker::finish`]).
    pub fn finish(mut self) -> Result<Verdict, CheckError> {
        if let Some(e) = self.engine.error {
            return Err(e);
        }
        if let Some(v) = self.engine.violation {
            return Ok(Verdict::Violated(v));
        }
        let mut settled: Vec<IntraViolation> = match &mut self.pool {
            ShardPool::Inline(state) => {
                let pending = state.drain_pending();
                pending.iter().map(|p| state.classify_settled(p)).collect()
            }
            ShardPool::Workers { workers, .. } => {
                for w in workers.iter() {
                    w.tx.as_ref()
                        .expect("pool already shut down")
                        .send(ShardMsg::Finish)
                        .expect("shard worker hung up");
                }
                workers
                    .iter()
                    .flat_map(|w| match w.rx.recv().expect("shard worker hung up") {
                        ShardReply::Settled(s) => s,
                        _ => unreachable!("finish reply out of order"),
                    })
                    .collect()
            }
        };
        settled.sort_by_key(|v| (v.txn, v.op_index));
        if settled.is_empty() {
            return Ok(Verdict::Satisfied);
        }
        if self.engine.opts.prescan_intra {
            Ok(Verdict::Violated(Violation::Intra(settled)))
        } else {
            let p = &settled[0];
            Err(CheckError::UnreadableValue {
                txn: p.txn,
                key: p.key,
                value: p.value,
            })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::check::{check_ser, check_si};
    use mtc_history::{anomalies, History, HistoryBuilder};

    fn stream_verdict(level: IsolationLevel, h: &History) -> Verdict {
        check_streaming(level, h).unwrap()
    }

    /// The witness of a cycle verdict must be a closed walk over real edges
    /// of the history's (batch-built) dependency graph.
    fn assert_cycle_is_certified(h: &History, edges: &[Edge]) {
        assert!(!edges.is_empty(), "empty cycle witness");
        let g = crate::build_dependency(h, false).unwrap();
        for (i, e) in edges.iter().enumerate() {
            assert!(
                g.contains_edge(e.from, e.to, e.kind),
                "witness edge {e:?} does not exist"
            );
            let next = &edges[(i + 1) % edges.len()];
            assert_eq!(e.to, next.from, "witness walk is not closed: {edges:?}");
        }
    }

    #[test]
    fn serial_histories_are_accepted_online() {
        let mut b = HistoryBuilder::new().with_init(2);
        b.committed(0, vec![Op::read(0u64, 0u64), Op::write(0u64, 1u64)]);
        b.committed(1, vec![Op::read(0u64, 1u64), Op::write(0u64, 2u64)]);
        b.committed(0, vec![Op::read(1u64, 0u64), Op::read(0u64, 2u64)]);
        let h = b.build();
        assert!(stream_verdict(IsolationLevel::Serializability, &h).is_satisfied());
        assert!(stream_verdict(IsolationLevel::SnapshotIsolation, &h).is_satisfied());
    }

    #[test]
    fn catalogue_agrees_with_batch_checkers_on_ser() {
        for (kind, h) in anomalies::catalogue() {
            let batch = check_ser(&h).unwrap();
            let streaming = stream_verdict(IsolationLevel::Serializability, &h);
            assert_eq!(
                batch.is_violated(),
                streaming.is_violated(),
                "SER mismatch on {kind}: batch={batch:?} streaming={streaming:?}"
            );
            if let Some(Violation::Cycle { edges }) = streaming.violation() {
                assert_cycle_is_certified(&h, edges);
            }
        }
    }

    #[test]
    fn catalogue_agrees_with_batch_checkers_on_si() {
        for (kind, h) in anomalies::catalogue() {
            let batch = check_si(&h).unwrap();
            let streaming = stream_verdict(IsolationLevel::SnapshotIsolation, &h);
            assert_eq!(
                batch.is_violated(),
                streaming.is_violated(),
                "SI mismatch on {kind}: batch={batch:?} streaming={streaming:?}"
            );
        }
    }

    #[test]
    fn divergence_payload_matches_batch() {
        let h = anomalies::lost_update();
        let batch = check_si(&h).unwrap();
        let streaming = stream_verdict(IsolationLevel::SnapshotIsolation, &h);
        assert_eq!(batch, streaming, "lost update must be the same DIVERGENCE");
    }

    #[test]
    fn intra_anomalies_match_batch_payloads() {
        // A thin-air read is only settled at finish(), like the batch
        // pre-scan that needs the whole history.
        let mut b = HistoryBuilder::new().with_init(1);
        b.committed(0, vec![Op::read(0u64, 777u64)]);
        let h = b.build();
        let batch = check_ser(&h).unwrap();
        let streaming = stream_verdict(IsolationLevel::Serializability, &h);
        assert_eq!(batch, streaming);
    }

    #[test]
    fn aborted_read_is_settled_at_finish() {
        let mut b = HistoryBuilder::new().with_init(1);
        b.aborted(0, vec![Op::read(0u64, 0u64), Op::write(0u64, 5u64)]);
        b.committed(1, vec![Op::read(0u64, 5u64)]);
        let h = b.build();
        let batch = check_ser(&h).unwrap();
        let streaming = stream_verdict(IsolationLevel::Serializability, &h);
        assert_eq!(batch, streaming);
    }

    #[test]
    fn early_exit_reports_violation_mid_stream() {
        // A long stream with a lost-update corruption planted early: the
        // checker must latch at the corrupted transaction, long before the
        // tail is consumed.
        let n = 400u64;
        let mut checker = IncrementalChecker::new_si().with_init_keys(0..1u64);
        // T1 installs 1; T2 and T3 both read 1 and overwrite: DIVERGENCE.
        checker
            .push_committed(0, vec![Op::read(0u64, 0u64), Op::write(0u64, 1u64)])
            .unwrap();
        checker
            .push_committed(1, vec![Op::read(0u64, 1u64), Op::write(0u64, 2u64)])
            .unwrap();
        let status = checker
            .push_committed(2, vec![Op::read(0u64, 1u64), Op::write(0u64, 3u64)])
            .unwrap();
        assert_eq!(status, StreamStatus::Violated);
        let latched_at = checker.first_violation_at().unwrap();
        assert_eq!(latched_at, TxnId(3));
        // Feed a long consistent tail; the verdict must stay latched and the
        // trigger index must not move.
        let mut last = 3u64;
        for i in 0..n {
            checker
                .push_committed(0, vec![Op::read(0u64, last), Op::write(0u64, 100 + i)])
                .unwrap();
            last = 100 + i;
        }
        assert_eq!(checker.first_violation_at(), Some(TxnId(3)));
        assert!(
            (latched_at.index() as u64) < n,
            "violation latched before the tail"
        );
        let verdict = checker.finish().unwrap();
        assert!(matches!(
            verdict,
            Verdict::Violated(Violation::Divergence { .. })
        ));
    }

    #[test]
    fn ser_cycle_latches_when_closing_edge_arrives() {
        // Write skew: T1 and T2 read both keys, then write one each.
        let mut checker = IncrementalChecker::new_ser().with_init_keys(0..2u64);
        checker
            .push_committed(
                0,
                vec![
                    Op::read(0u64, 0u64),
                    Op::read(1u64, 0u64),
                    Op::write(0u64, 1u64),
                ],
            )
            .unwrap();
        let status = checker
            .push_committed(
                1,
                vec![
                    Op::read(0u64, 0u64),
                    Op::read(1u64, 0u64),
                    Op::write(1u64, 2u64),
                ],
            )
            .unwrap();
        assert_eq!(
            status,
            StreamStatus::Violated,
            "write skew must latch at T2"
        );
        assert_eq!(checker.first_violation_at(), Some(TxnId(2)));
    }

    #[test]
    fn sharded_checker_agrees_with_sequential_on_the_catalogue() {
        for (kind, h) in anomalies::catalogue() {
            for level in [
                IsolationLevel::Serializability,
                IsolationLevel::SnapshotIsolation,
            ] {
                let sequential = check_streaming(level, &h).unwrap();
                for shards in [1usize, 2, 4] {
                    for batch in [1usize, 3, 64] {
                        let sharded = check_streaming_sharded(level, &h, shards, batch).unwrap();
                        assert_eq!(
                            sequential, sharded,
                            "{level} mismatch on {kind} with {shards} shards, batch {batch}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    #[allow(clippy::explicit_counter_loop)] // `value` is state, not a counter
    fn sharded_checker_matches_on_larger_streams() {
        // A serial multi-key history plus one corrupted read near the end.
        for corrupt in [false, true] {
            let keys = 16u64;
            let mut b = HistoryBuilder::new().with_init(keys);
            let mut last = vec![0u64; keys as usize];
            let mut value = 1u64;
            for i in 0..600u64 {
                let k = (i * 7) % keys;
                let read = if corrupt && i == 500 {
                    0
                } else {
                    last[k as usize]
                };
                b.committed((i % 6) as u32, vec![Op::read(k, read), Op::write(k, value)]);
                last[k as usize] = value;
                value += 1;
            }
            let h = b.build();
            for level in [
                IsolationLevel::Serializability,
                IsolationLevel::SnapshotIsolation,
            ] {
                let batch_verdict = match level {
                    IsolationLevel::Serializability => check_ser(&h).unwrap(),
                    _ => check_si(&h).unwrap(),
                };
                let sequential = check_streaming(level, &h).unwrap();
                let sharded = check_streaming_sharded(level, &h, 4, 128).unwrap();
                assert_eq!(batch_verdict.is_violated(), sequential.is_violated());
                assert_eq!(sequential, sharded);
            }
        }
    }

    #[test]
    fn options_default_is_shared_with_batch_checkers() {
        let checker = IncrementalChecker::new_ser();
        assert_eq!(*checker.options(), CheckOptions::default());
        let sharded = ShardedIncrementalChecker::new(IsolationLevel::SnapshotIsolation, 2);
        assert_eq!(sharded.engine.opts, CheckOptions::default());
    }

    #[test]
    fn divergence_ablation_option_still_rejects() {
        // A DIVERGENCE can be invisible in the composed graph, so the late
        // scan must run even with the early exit disabled — in the
        // sequential AND the sharded checker.
        let h = anomalies::lost_update();
        let opts = CheckOptions {
            skip_divergence_early_exit: true,
            ..CheckOptions::default()
        };
        let v = check_streaming_with(IsolationLevel::SnapshotIsolation, &h, &opts).unwrap();
        assert!(v.is_violated());
        for shards in [1usize, 3] {
            let mut c = ShardedIncrementalChecker::new(IsolationLevel::SnapshotIsolation, shards)
                .with_options(opts);
            let _ = c.push_history(&h, 2);
            let sharded = c.finish().unwrap();
            assert_eq!(v, sharded, "ablation mismatch with {shards} shards");
        }
    }

    #[test]
    fn non_mt_transaction_is_rejected_online() {
        let mut checker = IncrementalChecker::new_ser().with_init_keys(0..1u64);
        let err = checker
            .push_committed(0, vec![Op::write(0u64, 1u64)])
            .unwrap_err();
        assert!(matches!(err, CheckError::NotMiniTransaction(_)));
        // The error latches.
        let again = checker.push_committed(1, vec![Op::read(0u64, 0u64)]);
        assert!(again.is_err());
        assert!(checker.finish().is_err());
    }

    #[test]
    fn duplicate_values_are_rejected_online() {
        let mut checker = IncrementalChecker::new_ser().with_init_keys(0..1u64);
        checker
            .push_committed(0, vec![Op::read(0u64, 0u64), Op::write(0u64, 5u64)])
            .unwrap();
        let err = checker
            .push_committed(1, vec![Op::read(0u64, 0u64), Op::write(0u64, 5u64)])
            .unwrap_err();
        assert!(matches!(
            err,
            CheckError::NotMiniTransaction(MtViolation::DuplicateValue { .. })
        ));
    }

    #[test]
    fn unreadable_value_without_prescan_is_a_domain_error() {
        let mut b = HistoryBuilder::new().with_init(1);
        b.committed(0, vec![Op::read(0u64, 77u64)]);
        let h = b.build();
        let opts = CheckOptions {
            prescan_intra: false,
            ..CheckOptions::default()
        };
        let batch = crate::check_ser_with(&h, &opts);
        let streaming = check_streaming_with(IsolationLevel::Serializability, &h, &opts);
        assert!(matches!(batch, Err(CheckError::UnreadableValue { .. })));
        assert!(matches!(streaming, Err(CheckError::UnreadableValue { .. })));
    }

    #[test]
    fn sser_catches_a_real_time_violation_online() {
        // T1 writes x and finishes before T2 starts, but T2 still reads the
        // initial value: allowed by SER, forbidden by SSER — and the online
        // checker latches at T2, not at finish().
        let mut checker = IncrementalSserChecker::new().with_init_keys(0..1u64);
        checker
            .push_committed(0, vec![Op::read(0u64, 0u64), Op::write(0u64, 1u64)], 10, 20)
            .unwrap();
        let status = checker
            .push_committed(1, vec![Op::read(0u64, 0u64)], 30, 40)
            .unwrap();
        assert_eq!(status, StreamStatus::Violated);
        assert_eq!(checker.first_violation_at(), Some(TxnId(2)));
        let verdict = checker.finish().unwrap();
        let Verdict::Violated(Violation::Cycle { edges }) = verdict else {
            panic!("expected a cycle, got {verdict:?}");
        };
        assert!(
            edges.iter().any(|e| e.kind == EdgeKind::Rt),
            "counterexample should mention real time: {edges:?}"
        );
    }

    #[test]
    fn sser_accepts_overlapping_transactions() {
        // Overlapping intervals are not real-time ordered: both serial
        // orders are admissible, so a "stale" read by a concurrent
        // transaction is fine.
        let mut checker = IncrementalSserChecker::new().with_init_keys(0..1u64);
        checker
            .push_committed(0, vec![Op::read(0u64, 0u64), Op::write(0u64, 1u64)], 10, 30)
            .unwrap();
        let status = checker
            .push_committed(1, vec![Op::read(0u64, 0u64)], 20, 40)
            .unwrap();
        assert_eq!(status, StreamStatus::ConsistentSoFar);
        assert!(checker.finish().unwrap().is_satisfied());
    }

    #[test]
    fn sser_handles_equal_instants_as_overlap() {
        // end(T1) == begin(T2): the real-time order is strict, so no RT edge
        // and the stale read stays SSER-acceptable.
        let mut checker = IncrementalSserChecker::new().with_init_keys(0..1u64);
        checker
            .push_committed(0, vec![Op::read(0u64, 0u64), Op::write(0u64, 1u64)], 10, 20)
            .unwrap();
        let status = checker
            .push_committed(1, vec![Op::read(0u64, 0u64)], 20, 40)
            .unwrap();
        assert_eq!(status, StreamStatus::ConsistentSoFar);
        assert!(checker.finish().unwrap().is_satisfied());
    }

    #[test]
    fn sser_latches_on_out_of_order_instants() {
        // The violating commit *reports* instants in the past (clock skew):
        // T2 reads T1's write but claims to have finished before T1 began.
        let mut checker = IncrementalSserChecker::new().with_init_keys(0..1u64);
        checker
            .push_committed(0, vec![Op::read(0u64, 0u64), Op::write(0u64, 1u64)], 50, 60)
            .unwrap();
        let status = checker
            .push_committed(1, vec![Op::read(0u64, 1u64)], 5, 9)
            .unwrap();
        assert_eq!(status, StreamStatus::Violated);
        assert_eq!(checker.first_violation_at(), Some(TxnId(2)));
    }

    #[test]
    fn sser_self_inconsistent_interval_is_rejected() {
        // A commit whose reported end precedes its own begin contradicts the
        // time-chain by itself.
        let mut checker = IncrementalSserChecker::new().with_init_keys(0..1u64);
        let status = checker
            .push_committed(0, vec![Op::read(0u64, 0u64)], 30, 10)
            .unwrap();
        assert_eq!(status, StreamStatus::Violated);
    }

    #[test]
    fn streaming_sser_agrees_with_batch_on_the_catalogue() {
        use crate::check::check_sser;
        for (kind, h) in anomalies::catalogue() {
            let batch = check_sser(&h).unwrap();
            let streaming = check_streaming(IsolationLevel::StrictSerializability, &h).unwrap();
            assert_eq!(
                batch.is_violated(),
                streaming.is_violated(),
                "SSER mismatch on {kind}: batch={batch:?} streaming={streaming:?}"
            );
            for shards in [1usize, 2, 4] {
                for batch_size in [1usize, 3, 64] {
                    let sharded = check_streaming_sharded(
                        IsolationLevel::StrictSerializability,
                        &h,
                        shards,
                        batch_size,
                    )
                    .unwrap();
                    assert_eq!(
                        streaming, sharded,
                        "sequential/sharded SSER mismatch on {kind} ({shards} shards, batch {batch_size})"
                    );
                }
            }
        }
    }

    #[test]
    fn sser_untimed_transactions_degrade_to_ser() {
        // Without instants there are no real-time constraints: SSER accepts
        // exactly what SER accepts, matching the batch checkers.
        let mut b = HistoryBuilder::new().with_init(1);
        b.committed(0, vec![Op::read(0u64, 0u64), Op::write(0u64, 1u64)]);
        b.committed(1, vec![Op::read(0u64, 0u64)]);
        let h = b.build();
        assert!(crate::check::check_sser(&h).unwrap().is_satisfied());
        let streaming = check_streaming(IsolationLevel::StrictSerializability, &h).unwrap();
        assert!(streaming.is_satisfied());
    }

    #[test]
    fn partially_timed_transactions_still_constrain_real_time() {
        use crate::check::{check_sser, check_sser_naive};
        // T1 records only its commit instant, T2 only its begin — the RT
        // edge T1 → T2 needs exactly those two, so all three SSER flavours
        // must reject the stale read (the time-chain flavours used to skip
        // any transaction missing one instant).
        for (t1_times, t2_times) in [
            ((None, Some(20)), (Some(30), Some(40))),
            ((Some(10), Some(20)), (Some(30), None)),
            ((None, Some(20)), (Some(30), None)),
        ] {
            let mut b = HistoryBuilder::new().with_init(1);
            let mut t1 = Transaction::committed(
                TxnId(0),
                SessionId(0),
                vec![Op::read(0u64, 0u64), Op::write(0u64, 1u64)],
            );
            (t1.begin, t1.end) = t1_times;
            b.push_cloned(t1);
            let mut t2 = Transaction::committed(TxnId(0), SessionId(1), vec![Op::read(0u64, 0u64)]);
            (t2.begin, t2.end) = t2_times;
            b.push_cloned(t2);
            let h = b.build();
            let naive = check_sser_naive(&h).unwrap();
            let chain = check_sser(&h).unwrap();
            let streaming = check_streaming(IsolationLevel::StrictSerializability, &h).unwrap();
            assert!(naive.is_violated(), "{t1_times:?}/{t2_times:?}: naive");
            assert!(chain.is_violated(), "{t1_times:?}/{t2_times:?}: time-chain");
            assert!(
                streaming.is_violated(),
                "{t1_times:?}/{t2_times:?}: streaming"
            );
        }
    }

    #[test]
    fn sser_time_chain_grows_with_distinct_instants() {
        let mut checker = IncrementalSserChecker::new().with_init_keys(0..1u64);
        assert_eq!(checker.time_instant_count(), 1); // ⊥T at instant 0
        checker
            .push_committed(0, vec![Op::read(0u64, 0u64), Op::write(0u64, 1u64)], 10, 20)
            .unwrap();
        checker
            .push_committed(1, vec![Op::read(0u64, 1u64), Op::write(0u64, 2u64)], 25, 30)
            .unwrap();
        assert_eq!(checker.time_instant_count(), 5);
        // SER checkers never touch the chain.
        let ser = IncrementalChecker::new_ser().with_init_keys(0..1u64);
        assert_eq!(ser.time_instant_count(), 0);
    }

    /// The alive-token of the pool's worker threads, for shutdown tests.
    fn pool_canary(checker: &ShardedIncrementalChecker) -> Option<std::sync::Arc<()>> {
        match &checker.pool {
            ShardPool::Inline(_) => None,
            ShardPool::Workers { alive, .. } => Some(alive.clone()),
        }
    }

    #[test]
    fn dropping_a_sharded_checker_mid_stream_joins_its_workers() {
        // Abandon the checker after a violation latched but before finish()
        // — the stop_on_violation shape. Drop must join every worker thread.
        let h = anomalies::lost_update();
        let mut checker = ShardedIncrementalChecker::new(IsolationLevel::SnapshotIsolation, 3);
        assert_eq!(checker.live_worker_threads(), 3);
        let canary = pool_canary(&checker).expect("multi-shard pool must spawn workers");
        let status = checker.push_history(&h, 2).unwrap();
        assert_eq!(status, StreamStatus::Violated, "lost update must latch");
        assert_eq!(
            std::sync::Arc::strong_count(&canary),
            1 + 3 + 1,
            "pool + one token per live worker + test clone"
        );
        drop(checker);
        assert_eq!(
            std::sync::Arc::strong_count(&canary),
            1,
            "every worker thread must have exited and been joined"
        );
    }

    #[test]
    fn dropping_a_clean_sharded_checker_joins_its_workers() {
        let mut b = HistoryBuilder::new().with_init(4);
        b.committed(0, vec![Op::read(0u64, 0u64), Op::write(0u64, 1u64)]);
        let h = b.build();
        let mut checker = ShardedIncrementalChecker::new(IsolationLevel::Serializability, 2);
        let canary = pool_canary(&checker).expect("multi-shard pool must spawn workers");
        let _ = checker.push_history(&h, 8);
        drop(checker); // mid-stream: no finish(), workers idle in recv
        assert_eq!(std::sync::Arc::strong_count(&canary), 1);
    }

    #[test]
    fn finish_consumes_the_pool_and_joins_its_workers() {
        let mut b = HistoryBuilder::new().with_init(2);
        b.committed(0, vec![Op::read(0u64, 0u64), Op::write(0u64, 1u64)]);
        let h = b.build();
        let mut checker = ShardedIncrementalChecker::new(IsolationLevel::Serializability, 2);
        let canary = pool_canary(&checker).expect("multi-shard pool must spawn workers");
        let _ = checker.push_history(&h, 8);
        assert!(checker.finish().unwrap().is_satisfied());
        assert_eq!(std::sync::Arc::strong_count(&canary), 1);
    }

    /// A serial multi-key MT history: session `i % 6`, key round-robin over
    /// `keys - 2` keys. With `corrupt_at = Some(c)`, a write-skew gadget —
    /// two overlapping transactions reading the (never overwritten, hence
    /// GC-retained) initial versions of the two reserved keys and each
    /// writing one — is planted at position `c`: an *in-window* violation
    /// of SER/SSER (and none of SI), so the GC'd verdict must match the
    /// unbounded one.
    #[allow(clippy::explicit_counter_loop)] // `value` is state, not a counter
    fn serial_history(n: u64, keys: u64, corrupt_at: Option<u64>) -> History {
        assert!(keys >= 3);
        let (ka, kb) = (keys - 2, keys - 1);
        let mut b = HistoryBuilder::new().with_init(keys);
        let mut last = vec![0u64; keys as usize];
        let mut value = 1u64;
        for i in 0..n {
            if corrupt_at == Some(i) {
                b.committed_timed(
                    6,
                    vec![
                        Op::read(ka, 0u64),
                        Op::read(kb, 0u64),
                        Op::write(ka, 900_000_001u64),
                    ],
                    10 * i + 1,
                    10 * i + 6,
                );
                b.committed_timed(
                    7,
                    vec![
                        Op::read(ka, 0u64),
                        Op::read(kb, 0u64),
                        Op::write(kb, 900_000_002u64),
                    ],
                    10 * i + 2,
                    10 * i + 7,
                );
            }
            let k = (i * 5) % (keys - 2); // stride coprime to every tested key count
            b.committed_timed(
                (i % 6) as u32,
                vec![Op::read(k, last[k as usize]), Op::write(k, value)],
                10 * i + 1,
                10 * i + 5,
            );
            last[k as usize] = value;
            value += 1;
        }
        b.build()
    }

    /// Pushes `h`'s transactions `[0, cut)` into `checker` (excluding `⊥T`,
    /// which must be seeded separately), returning the remaining tail.
    fn push_prefix(checker: &mut IncrementalChecker, h: &History, cut: usize) -> Vec<Transaction> {
        let mut fed = 0usize;
        let mut tail = Vec::new();
        for t in h.txns() {
            if Some(t.id) == h.init_txn() {
                continue;
            }
            if fed < cut {
                let _ = checker.push(t.clone());
                fed += 1;
            } else {
                tail.push(t.clone());
            }
        }
        tail
    }

    #[test]
    fn checkpoint_resume_matches_uninterrupted_run() {
        for level in [
            IsolationLevel::Serializability,
            IsolationLevel::SnapshotIsolation,
            IsolationLevel::StrictSerializability,
        ] {
            for corrupt in [None, Some(150u64)] {
                let h = serial_history(200, 8, corrupt);
                let clean = check_streaming(level, &h).unwrap();

                let mut first = IncrementalChecker::new(level);
                if let Some(init) = h.init_txn() {
                    first.feed(h.txn(init).clone(), true);
                }
                let tail = push_prefix(&mut first, &h, 100);
                let snapshot = first.checkpoint();
                drop(first);
                // Serialize through the workspace serde stack, like a
                // checkpoint file would.
                let json = serde_json::to_string(&snapshot).unwrap();
                let snapshot: CheckerSnapshot = serde_json::from_str(&json).unwrap();
                let mut resumed = IncrementalChecker::resume(snapshot);
                for t in tail {
                    let _ = resumed.push(t);
                }
                let resumed_first = resumed.first_violation_at();
                let verdict = resumed.finish().unwrap();
                assert_eq!(verdict, clean, "{level} corrupt={corrupt:?}");
                if clean.is_violated() {
                    assert!(resumed_first.is_some(), "{level}: must latch mid-stream");
                }
            }
        }
    }

    #[test]
    fn snapshots_cross_between_sequential_and_sharded_checkers() {
        let h = serial_history(300, 8, Some(250));
        for level in [
            IsolationLevel::Serializability,
            IsolationLevel::SnapshotIsolation,
            IsolationLevel::StrictSerializability,
        ] {
            let clean = check_streaming(level, &h).unwrap();

            // Sharded checkpoint → sequential resume.
            let mut sharded = ShardedIncrementalChecker::new(level, 3);
            let txns: Vec<Transaction> = h
                .txns()
                .iter()
                .filter(|t| Some(t.id) != h.init_txn())
                .cloned()
                .collect();
            sharded.consume_batch(vec![(h.txn(TxnId(0)).clone(), true)]);
            let (head, tail) = txns.split_at(140);
            let _ = sharded.push_batch(head.to_vec());
            let snapshot = sharded.checkpoint();
            drop(sharded);
            let mut seq = IncrementalChecker::resume(snapshot.clone());
            for t in tail.iter().cloned() {
                let _ = seq.push(t);
            }
            assert_eq!(seq.finish().unwrap(), clean, "{level} sharded→sequential");

            // Same snapshot → sharded resume under a different geometry.
            let mut resharded = ShardedIncrementalChecker::resume(snapshot, 5);
            let _ = resharded.push_batch(tail.to_vec());
            assert_eq!(
                resharded.finish().unwrap(),
                clean,
                "{level} sharded→resharded"
            );
        }
    }

    #[test]
    fn gc_bounds_resident_state_and_preserves_verdicts() {
        let n = 6000u64;
        for (level, corrupt) in [
            (IsolationLevel::Serializability, None),
            (IsolationLevel::Serializability, Some(5500u64)),
            (IsolationLevel::SnapshotIsolation, None),
            (IsolationLevel::StrictSerializability, None),
            (IsolationLevel::StrictSerializability, Some(5500u64)),
        ] {
            let h = serial_history(n, 16, corrupt);
            let clean = check_streaming(level, &h).unwrap();
            let mut unbounded = IncrementalChecker::new(level);
            let _ = unbounded.push_history(&h);
            let unbounded_first = unbounded.first_violation_at();

            let mut gc = IncrementalChecker::new(level).with_gc(GcPolicy {
                window: 512,
                every: 128,
                reader_cap: 0,
            });
            let _ = gc.push_history(&h);
            assert!(
                gc.pruned_txn_count() > 0,
                "{level}: the GC must actually retire transactions"
            );
            let cap = 3 * 512;
            assert!(
                gc.live_txn_count() <= cap,
                "{level}: {} resident transactions exceed the cap {cap}",
                gc.live_txn_count()
            );
            // SSER keeps up to five nodes per resident transaction: its own
            // plus two chain nodes for each of its two instants.
            assert!(
                gc.live_node_count() <= 5 * gc.live_txn_count() + 16,
                "{level}: {} live nodes for {} live transactions",
                gc.live_node_count(),
                gc.live_txn_count()
            );
            assert_eq!(gc.first_violation_at(), unbounded_first, "{level}");
            assert_eq!(gc.finish().unwrap(), clean, "{level} corrupt={corrupt:?}");
        }
    }

    #[test]
    fn sharded_gc_matches_sequential_gc_verdicts() {
        let h = serial_history(3000, 8, Some(2800));
        for level in [
            IsolationLevel::Serializability,
            IsolationLevel::SnapshotIsolation,
            IsolationLevel::StrictSerializability,
        ] {
            let policy = GcPolicy {
                window: 256,
                every: 64,
                reader_cap: 0,
            };
            let mut seq = IncrementalChecker::new(level).with_gc(policy);
            let _ = seq.push_history(&h);
            let mut sharded = ShardedIncrementalChecker::new(level, 3).with_gc(policy);
            let _ = sharded.push_history(&h, 50);
            assert!(sharded.pruned_txn_count() > 0);
            assert!(sharded.live_txn_count() <= 3 * 256);
            assert_eq!(
                seq.first_violation_at(),
                sharded.first_violation_at(),
                "{level}"
            );
            assert_eq!(seq.finish().unwrap(), sharded.finish().unwrap(), "{level}");
        }
    }

    #[test]
    fn gc_keeps_session_frontier_and_init_resident() {
        let h = serial_history(1000, 4, None);
        let mut gc = IncrementalChecker::new(IsolationLevel::Serializability).with_gc(GcPolicy {
            window: 64,
            every: 32,
            reader_cap: 0,
        });
        let _ = gc.push_history(&h);
        // ⊥T and the last transaction of each of the 6 sessions must be
        // resident: both can still source edges.
        assert!(gc.engine.live_txns.contains_key(&TxnId(0)));
        for last in gc.engine.sessions.iter().flatten() {
            assert!(gc.engine.live_txns.contains_key(&last.0));
        }
        assert!(gc.finish().unwrap().is_satisfied());
    }

    #[test]
    fn checkpoint_after_gc_resumes_exactly() {
        let h = serial_history(2000, 8, Some(1900));
        let level = IsolationLevel::StrictSerializability;
        let clean = check_streaming(level, &h).unwrap();
        let mut c = IncrementalChecker::new(level).with_gc(GcPolicy {
            window: 256,
            every: 64,
            reader_cap: 0,
        });
        if let Some(init) = h.init_txn() {
            c.feed(h.txn(init).clone(), true);
        }
        let tail = push_prefix(&mut c, &h, 1000);
        assert!(c.pruned_txn_count() > 0, "GC ran before the checkpoint");
        let json = serde_json::to_string(&c.checkpoint()).unwrap();
        let mut resumed = IncrementalChecker::resume(serde_json::from_str(&json).unwrap());
        assert_eq!(
            resumed.gc_policy(),
            Some(GcPolicy {
                window: 256,
                every: 64,
                reader_cap: 0,
            }),
            "the GC policy must survive the snapshot"
        );
        for t in tail {
            let _ = resumed.push(t);
        }
        assert_eq!(resumed.finish().unwrap(), clean);
    }

    #[test]
    fn sser_pending_reads_settle_at_finish() {
        // A read of a never-written value stays pending and settles as a
        // THINAIRREAD at finish(), matching the batch pre-scan.
        let mut b = HistoryBuilder::new().with_init(1);
        b.committed_timed(0, vec![Op::read(0u64, 777u64)], 10, 20);
        let h = b.build();
        let batch = crate::check::check_sser(&h).unwrap();
        let streaming = check_streaming(IsolationLevel::StrictSerializability, &h).unwrap();
        assert_eq!(batch, streaming);
    }
}
