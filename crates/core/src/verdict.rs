//! Verdicts, violations and counterexamples.
//!
//! Every verifier returns a [`Verdict`]: either the history satisfies the
//! isolation level, or it does not and the verdict carries a [`Violation`] —
//! a concrete, minimal witness in the spirit of the counterexamples MTC
//! reports in Figures 12 and 18 of the paper.

use mtc_history::{Edge, IntraViolation, Key, TxnId, Value};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Result of checking a history against an isolation level.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum Verdict {
    /// The history satisfies the isolation level.
    Satisfied,
    /// The history violates the isolation level; the payload explains why.
    Violated(Violation),
}

impl Verdict {
    /// True iff the verdict is [`Verdict::Satisfied`].
    #[inline]
    pub fn is_satisfied(&self) -> bool {
        matches!(self, Verdict::Satisfied)
    }

    /// True iff the verdict is a violation.
    #[inline]
    pub fn is_violated(&self) -> bool {
        !self.is_satisfied()
    }

    /// The violation, if any.
    pub fn violation(&self) -> Option<&Violation> {
        match self {
            Verdict::Satisfied => None,
            Verdict::Violated(v) => Some(v),
        }
    }
}

/// Why a history violates an isolation level.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum Violation {
    /// One or more intra-transactional / read-provenance anomalies
    /// (Figures 5a–5g) were found by the pre-scan.
    Intra(Vec<IntraViolation>),
    /// The DIVERGENCE pattern (Definition 10): `reader1` and `reader2` both
    /// read `value` of `key` from `writer` and then wrote different values.
    /// Immediately refutes snapshot isolation.
    Divergence {
        /// The object concerned.
        key: Key,
        /// The value both readers observed.
        value: Value,
        /// The transaction that installed `value` (the initial transaction
        /// when the value is the initial one).
        writer: Option<TxnId>,
        /// First diverging reader-writer.
        reader1: TxnId,
        /// Second diverging reader-writer.
        reader2: TxnId,
    },
    /// A dependency cycle. The edges form a closed walk
    /// `edges[0].from → … → edges[last].to == edges[0].from`.
    Cycle {
        /// The labelled edges of the cycle.
        edges: Vec<Edge>,
    },
    /// A violation of linearizability in a lightweight-transaction history.
    Lwt(LwtViolation),
}

/// Linearizability violations reported by `VL-LWT` (Algorithm 2).
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum LwtViolation {
    /// The history of this key does not contain exactly one initial
    /// insert-if-not-exists operation.
    BadInsertCount {
        /// The key concerned.
        key: Key,
        /// How many inserts were found.
        count: usize,
    },
    /// The operations cannot be arranged into a read-from chain: no (or more
    /// than one) remaining operation expects `value`.
    BrokenChain {
        /// The key concerned.
        key: Key,
        /// The chain value for which no unique successor exists.
        value: Value,
        /// Number of candidate successors found (0 or ≥ 2).
        candidates: usize,
    },
    /// The chain violates real time: `op` starts after a later chain element
    /// already finished.
    RealTime {
        /// The key concerned.
        key: Key,
        /// Index (in chain order) of the offending operation.
        chain_index: usize,
        /// Start instant of the offending operation.
        start: u64,
        /// The minimum finish instant among later chain elements.
        min_later_finish: u64,
    },
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Violation::Intra(vs) => {
                writeln!(f, "intra-transactional anomalies:")?;
                for v in vs {
                    writeln!(f, "  {v}")?;
                }
                Ok(())
            }
            Violation::Divergence {
                key,
                value,
                writer,
                reader1,
                reader2,
            } => {
                write!(
                    f,
                    "DIVERGENCE on key {key}: {reader1} and {reader2} both read value {value}"
                )?;
                if let Some(w) = writer {
                    write!(f, " (written by {w})")?;
                }
                write!(f, " and then wrote different values")
            }
            Violation::Cycle { edges } => {
                write!(f, "dependency cycle: ")?;
                for (i, e) in edges.iter().enumerate() {
                    if i > 0 {
                        write!(f, " ")?;
                    }
                    write!(f, "{} -{}->", e.from, e.kind)?;
                }
                if let Some(first) = edges.first() {
                    write!(f, " {}", first.from)?;
                }
                Ok(())
            }
            Violation::Lwt(v) => write!(f, "{v}"),
        }
    }
}

impl fmt::Display for LwtViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LwtViolation::BadInsertCount { key, count } => {
                write!(f, "key {key}: expected exactly one insert, found {count}")
            }
            LwtViolation::BrokenChain {
                key,
                value,
                candidates,
            } => write!(
                f,
                "key {key}: cannot extend the read-from chain at value {value} ({candidates} candidates)"
            ),
            LwtViolation::RealTime {
                key,
                chain_index,
                start,
                min_later_finish,
            } => write!(
                f,
                "key {key}: chain element #{chain_index} starts at {start}, after a later element finished at {min_later_finish}"
            ),
        }
    }
}

/// Errors that prevent a verifier from producing a verdict at all (the input
/// is outside the algorithm's domain, as opposed to violating the level).
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum CheckError {
    /// The history is not a mini-transaction history (Definition 9).
    NotMiniTransaction(crate::mini::MtViolation),
    /// Two committed transactions installed the same value for the same key,
    /// so the write-read relation is ambiguous. Verification without unique
    /// values is NP-hard (Appendix C).
    NonUniqueValues {
        /// Offending key.
        key: Key,
        /// The duplicated value.
        value: Value,
    },
    /// A committed read returned a value for which no committed writer exists
    /// and which is not the initial value — the dependency graph cannot be
    /// built. (The pre-scan normally reports this as a ThinAirRead first.)
    UnreadableValue {
        /// The reading transaction.
        txn: TxnId,
        /// Offending key.
        key: Key,
        /// The value with no writer.
        value: Value,
    },
    /// Strict serializability was requested but some committed transaction
    /// lacks begin/end timestamps.
    MissingTimestamps {
        /// The transaction without timing information.
        txn: TxnId,
    },
    /// A lightweight-transaction history contained an operation kind the
    /// checker does not support.
    UnsupportedLwtOp {
        /// The key of the offending operation.
        key: Key,
    },
}

impl fmt::Display for CheckError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CheckError::NotMiniTransaction(v) => write!(f, "not a mini-transaction history: {v}"),
            CheckError::NonUniqueValues { key, value } => write!(
                f,
                "value {value} written more than once to key {key}; unique values are required"
            ),
            CheckError::UnreadableValue { txn, key, value } => write!(
                f,
                "{txn} reads value {value} of key {key}, which no committed transaction wrote"
            ),
            CheckError::MissingTimestamps { txn } => {
                write!(f, "{txn} lacks begin/end timestamps required for SSER")
            }
            CheckError::UnsupportedLwtOp { key } => {
                write!(
                    f,
                    "unsupported lightweight-transaction operation on key {key}"
                )
            }
        }
    }
}

impl std::error::Error for CheckError {}

#[cfg(test)]
mod tests {
    use super::*;
    use mtc_history::EdgeKind;

    #[test]
    fn verdict_helpers() {
        assert!(Verdict::Satisfied.is_satisfied());
        let v = Verdict::Violated(Violation::Cycle { edges: vec![] });
        assert!(v.is_violated());
        assert!(v.violation().is_some());
        assert!(Verdict::Satisfied.violation().is_none());
    }

    #[test]
    fn cycle_display_matches_paper_style() {
        let edges = vec![
            Edge {
                from: TxnId(1),
                to: TxnId(2),
                kind: EdgeKind::Wr(Key(0)),
            },
            Edge {
                from: TxnId(2),
                to: TxnId(1),
                kind: EdgeKind::Rw(Key(0)),
            },
        ];
        let s = Violation::Cycle { edges }.to_string();
        assert!(s.contains("T1 -WR(0)-> T2 -RW(0)-> T1"), "{s}");
    }

    #[test]
    fn divergence_display() {
        let v = Violation::Divergence {
            key: Key(2),
            value: Value(7),
            writer: Some(TxnId(9)),
            reader1: TxnId(3),
            reader2: TxnId(4),
        };
        let s = v.to_string();
        assert!(s.contains("DIVERGENCE"));
        assert!(s.contains("T3"));
        assert!(s.contains("T9"));
    }

    #[test]
    fn error_display() {
        let e = CheckError::NonUniqueValues {
            key: Key(1),
            value: Value(5),
        };
        assert!(e.to_string().contains("unique"));
    }
}
