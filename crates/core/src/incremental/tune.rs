//! Self-tuning shard geometry for the sharded streaming checker.
//!
//! The sharded checker has two knobs: the number of shard workers and the
//! hand-off batch size. Both used to be hard-coded call-site constants; this
//! module picks them from the machine instead:
//!
//! * **shards** — one worker per available core, minus one core reserved for
//!   the merge thread (which runs the batched topological-order insertion),
//!   clamped to `[1, MAX_SHARDS]`. On a single-core box this degenerates to
//!   one shard, which the checker runs inline without spawning threads — the
//!   measured-fastest configuration there.
//! * **batch** — a short calibration burst: a small synthetic serial
//!   history is pushed through the sharded checker once per candidate batch
//!   size and the fastest candidate wins. Calibration runs once per process
//!   (the result is cached) and is skipped entirely when only one shard is
//!   available, where the batch size only sets hand-off granularity and the
//!   default is used.
//!
//! [`tune`] is the cached entry point used by `mtc-dbsim`'s live verifier,
//! the `mtc-runner` sharded checkers and the `streaming_throughput` bench;
//! [`tune_for`] is the pure clamping core, kept separate so the policy is
//! unit-testable without touching the host machine.

use crate::check::IsolationLevel;
use crate::incremental::ShardedIncrementalChecker;
use std::sync::OnceLock;

/// Upper bound on the worker count: beyond this, per-shard key states get so
/// sparse that hand-off overhead dominates any derivation parallelism.
pub const MAX_SHARDS: usize = 32;

/// Upper bound on the hand-off batch size: larger batches only delay
/// violation latching without measurable throughput gain.
pub const MAX_BATCH: usize = 8192;

/// Batch size used when calibration is skipped (single shard) or
/// unavailable.
pub const DEFAULT_BATCH: usize = 512;

/// Candidate batch sizes tried by the calibration burst.
const BATCH_CANDIDATES: [usize; 3] = [128, 512, 2048];

/// A shard-count / batch-size pair for [`ShardedIncrementalChecker`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ShardTuning {
    /// Number of shard workers (1 ⇒ inline, no threads spawned).
    pub shards: usize,
    /// Transactions per hand-off batch.
    pub batch: usize,
}

impl ShardTuning {
    /// Clamps arbitrary values into the supported geometry: at least one
    /// shard (at most [`MAX_SHARDS`]), at least a batch of one (at most
    /// [`MAX_BATCH`]).
    pub fn clamped(shards: usize, batch: usize) -> Self {
        ShardTuning {
            shards: shards.clamp(1, MAX_SHARDS),
            batch: batch.clamp(1, MAX_BATCH),
        }
    }
}

/// The pure tuning policy: shard count for a machine with `parallelism`
/// hardware threads, reserving one for the merge thread, with the default
/// batch size. `parallelism == 0` (unknown) is treated as a single core.
pub fn tune_for(parallelism: usize) -> ShardTuning {
    ShardTuning::clamped(parallelism.saturating_sub(1).max(1), DEFAULT_BATCH)
}

/// The tuned geometry for this machine: [`tune_for`] over
/// `available_parallelism()`, with the batch size refined by a one-off
/// calibration burst when more than one shard is available. Cached for the
/// lifetime of the process.
pub fn tune() -> ShardTuning {
    static TUNED: OnceLock<ShardTuning> = OnceLock::new();
    *TUNED.get_or_init(|| {
        let parallelism = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        let base = tune_for(parallelism);
        if base.shards <= 1 {
            return base;
        }
        ShardTuning {
            batch: calibrate_batch(base.shards),
            ..base
        }
    })
}

/// Times one sharded pass over a small synthetic serial history per batch
/// candidate and returns the fastest. The burst is ~1.5k transactions, so
/// the whole calibration stays in the low milliseconds.
fn calibrate_batch(shards: usize) -> usize {
    let history = burst_history(1536, 64, 8);
    let mut best = (DEFAULT_BATCH, std::time::Duration::MAX);
    for candidate in BATCH_CANDIDATES {
        let start = std::time::Instant::now();
        let mut checker = ShardedIncrementalChecker::new(IsolationLevel::Serializability, shards);
        let _ = checker.push_history(&history, candidate);
        let ok = checker.finish().map(|v| v.is_satisfied()).unwrap_or(false);
        let elapsed = start.elapsed();
        debug_assert!(ok, "the calibration burst is serial by construction");
        if elapsed < best.1 {
            best = (candidate, elapsed);
        }
    }
    best.0
}

/// The calibration workload: the same serial read-modify-write shape the
/// benches and the CI gate measure (`mtc_history::synthetic`), untimed.
fn burst_history(n: u64, keys: u64, sessions: u32) -> mtc_history::History {
    mtc_history::synthetic::serial_rmw_history(n, keys, sessions, false)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_core_machines_run_inline() {
        assert_eq!(tune_for(0).shards, 1, "unknown parallelism");
        assert_eq!(tune_for(1).shards, 1, "one core");
        // Two cores: one worker plus the merge thread.
        assert_eq!(tune_for(2).shards, 1);
        assert_eq!(tune_for(3).shards, 2);
    }

    #[test]
    fn huge_core_counts_are_capped() {
        assert_eq!(tune_for(4096).shards, MAX_SHARDS);
        assert_eq!(tune_for(usize::MAX).shards, MAX_SHARDS);
    }

    #[test]
    fn zero_sized_batches_are_clamped_to_one() {
        let t = ShardTuning::clamped(4, 0);
        assert_eq!(t.batch, 1);
        assert_eq!(t.shards, 4);
    }

    #[test]
    fn oversized_geometry_is_clamped() {
        let t = ShardTuning::clamped(0, usize::MAX);
        assert_eq!(t.shards, 1);
        assert_eq!(t.batch, MAX_BATCH);
    }

    #[test]
    fn tune_is_cached_and_valid() {
        let a = tune();
        let b = tune();
        assert_eq!(a, b, "tune() must be stable within a process");
        assert!(a.shards >= 1 && a.shards <= MAX_SHARDS);
        assert!(a.batch >= 1 && a.batch <= MAX_BATCH);
    }

    #[test]
    fn calibration_picks_a_candidate() {
        let batch = calibrate_batch(2);
        assert!(BATCH_CANDIDATES.contains(&batch));
    }

    #[test]
    fn tuned_checker_agrees_with_sequential() {
        let history = burst_history(300, 8, 4);
        let sequential =
            crate::incremental::check_streaming(IsolationLevel::Serializability, &history).unwrap();
        let mut checker = ShardedIncrementalChecker::new_tuned(IsolationLevel::Serializability);
        let t = tune();
        let _ = checker.push_history(&history, t.batch);
        assert_eq!(sequential, checker.finish().unwrap());
    }
}
