//! Transaction execution: snapshot reads, buffered writes, optimistic
//! commit-time validation, and the fault hooks.

use crate::db::Database;
use crate::faults::ActiveFaults;
use crate::store::StoredValue;
use mtc_history::{Key, Value, INIT_VALUE};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::fmt;

/// Why a transaction aborted.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AbortReason {
    /// First-committer-wins: a written key has a version newer than the
    /// transaction's snapshot.
    WriteConflict,
    /// Commit-time read validation failed: a read key has a version newer
    /// than the transaction's snapshot.
    ReadConflict,
    /// The transaction was aborted by the injected `DirtyRelease` fault
    /// (after publishing its writes).
    InjectedAbort,
    /// The client explicitly rolled back.
    UserAbort,
    /// The transaction lost a wait-die conflict in a pessimistic (locking)
    /// engine: it requested a lock held by an older transaction and was
    /// killed instead of being allowed to wait (deadlock prevention).
    Deadlock,
    /// The connection to a remote backend failed (timeout, reset, refused)
    /// before the commit request was sent. No write can have been applied,
    /// so the attempt is safe to record as aborted and to retry.
    ConnectionLost,
    /// The connection to a remote backend failed *after* the commit request
    /// was sent but before its reply arrived: the transaction may or may
    /// not have committed on the server. The drivers neither record nor
    /// retry such attempts — recording them as aborted could contradict a
    /// commit that actually happened, and retrying could duplicate it.
    CommitStatusUnknown,
}

impl AbortReason {
    /// True iff a driver may retry the transaction template after this
    /// abort. [`AbortReason::InjectedAbort`] already published its writes
    /// (retrying would duplicate values) and
    /// [`AbortReason::CommitStatusUnknown`] may already have committed, so
    /// both are final; every other reason rolls back cleanly.
    pub fn is_retryable(&self) -> bool {
        !matches!(
            self,
            AbortReason::InjectedAbort | AbortReason::CommitStatusUnknown
        )
    }

    /// True iff the attempt's outcome is actually known to be an abort.
    /// [`AbortReason::CommitStatusUnknown`] is the one reason for which it
    /// is not: the drivers must keep such attempts out of the collected
    /// history (an attempt recorded as aborted whose writes committed on
    /// the server would be indistinguishable from a dirty-write anomaly).
    pub fn outcome_known(&self) -> bool {
        !matches!(self, AbortReason::CommitStatusUnknown)
    }
}

impl fmt::Display for AbortReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AbortReason::WriteConflict => write!(f, "write-write conflict"),
            AbortReason::ReadConflict => write!(f, "read validation conflict"),
            AbortReason::InjectedAbort => write!(f, "injected abort"),
            AbortReason::UserAbort => write!(f, "user abort"),
            AbortReason::Deadlock => write!(f, "wait-die deadlock victim"),
            AbortReason::ConnectionLost => write!(f, "connection to the backend lost"),
            AbortReason::CommitStatusUnknown => {
                write!(f, "connection lost awaiting the commit reply")
            }
        }
    }
}

/// Information returned by a successful commit.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct CommitInfo {
    /// Commit timestamp assigned to the transaction.
    pub commit_ts: u64,
}

/// An open transaction.
pub struct TxnHandle<'db> {
    db: &'db Database,
    begin_ts: u64,
    faults: ActiveFaults,
    /// Keys read from the store, with the commit timestamp of the version
    /// observed (used for read validation).
    read_set: HashMap<Key, u64>,
    /// Buffered writes (applied at commit), in first-write order.
    write_buffer: HashMap<Key, StoredValue>,
    write_order: Vec<Key>,
}

impl<'db> TxnHandle<'db> {
    pub(crate) fn new(db: &'db Database, begin_ts: u64, faults: ActiveFaults) -> Self {
        TxnHandle {
            db,
            begin_ts,
            faults,
            read_set: HashMap::new(),
            write_buffer: HashMap::new(),
            write_order: Vec::new(),
        }
    }

    /// The transaction's begin timestamp (also its snapshot timestamp).
    pub fn begin_ts(&self) -> u64 {
        self.begin_ts
    }

    fn op_latency(&self) {
        let d = self.db.config.op_latency;
        if !d.is_zero() {
            std::thread::sleep(d);
        }
    }

    fn snapshot_ts(&self) -> u64 {
        if self.db.config.isolation.snapshot_reads() {
            self.begin_ts
        } else {
            u64::MAX // read-committed: always the latest committed version
        }
    }

    fn read_stored(&mut self, key: Key) -> StoredValue {
        self.op_latency();
        if let Some(v) = self.write_buffer.get(&key) {
            return v.clone();
        }
        let version = self
            .db
            .store
            .read(key, self.snapshot_ts(), self.faults.stale_versions);
        match version {
            Some(v) => {
                self.read_set.entry(key).or_insert(v.commit_ts);
                v.value
            }
            None => {
                self.read_set.entry(key).or_insert(0);
                StoredValue::Register(INIT_VALUE)
            }
        }
    }

    /// Reads the register at `key` (the implicit initial value if never
    /// written).
    pub fn read_register(&mut self, key: Key) -> Value {
        match self.read_stored(key) {
            StoredValue::Register(v) => v,
            StoredValue::List(_) => INIT_VALUE,
        }
    }

    /// Reads the list at `key` (empty if never written).
    pub fn read_list(&mut self, key: Key) -> Vec<Value> {
        match self.read_stored(key) {
            StoredValue::List(l) => l,
            StoredValue::Register(v) if v == INIT_VALUE => Vec::new(),
            StoredValue::Register(v) => vec![v],
        }
    }

    fn buffer_write(&mut self, key: Key, value: StoredValue) {
        self.op_latency();
        if !self.write_buffer.contains_key(&key) {
            self.write_order.push(key);
        }
        self.write_buffer.insert(key, value);
    }

    /// Writes `value` to the register at `key`.
    pub fn write_register(&mut self, key: Key, value: Value) {
        self.buffer_write(key, StoredValue::Register(value));
    }

    /// Appends `element` to the list at `key` (a read-modify-write on the
    /// whole list, as in SQL `UPDATE ... SET l = l || elem`).
    pub fn append(&mut self, key: Key, element: Value) {
        let mut list = self.read_list(key);
        list.push(element);
        self.buffer_write(key, StoredValue::List(list));
    }

    /// The keys this transaction has written so far.
    pub fn write_set(&self) -> &[Key] {
        &self.write_order
    }

    /// Attempts to commit. On success the buffered writes become visible
    /// atomically at the returned commit timestamp.
    pub fn commit(self) -> Result<CommitInfo, AbortReason> {
        let db = self.db;
        let commit_latency = db.config.commit_latency;
        let _guard = db.commit_lock.lock();

        // Injected dirty release: publish, then abort.
        if self.faults.dirty_release && !self.write_buffer.is_empty() {
            let commit_ts = db.tick();
            db.store.install_all(
                commit_ts,
                self.write_order
                    .iter()
                    .map(|k| (*k, self.write_buffer.get(k).expect("buffered"))),
            );
            if !commit_latency.is_zero() {
                std::thread::sleep(commit_latency);
            }
            return Err(AbortReason::InjectedAbort);
        }

        let isolation = db.config.isolation;
        if isolation.validates_writes() && !self.faults.skip_write_validation {
            for key in &self.write_order {
                if db.store.has_newer_than(*key, self.begin_ts) {
                    return Err(AbortReason::WriteConflict);
                }
            }
        }
        if isolation.validates_reads() && !self.faults.skip_read_validation {
            for key in self.read_set.keys() {
                if db.store.has_newer_than(*key, self.begin_ts) {
                    return Err(AbortReason::ReadConflict);
                }
            }
        }

        let commit_ts = db.tick();
        if !self.write_buffer.is_empty() {
            db.store.install_all(
                commit_ts,
                self.write_order
                    .iter()
                    .map(|k| (*k, self.write_buffer.get(k).expect("buffered"))),
            );
        }
        if !commit_latency.is_zero() {
            std::thread::sleep(commit_latency);
        }
        // Injected clock skew: the store installs at the true timestamp
        // (keeping version chains monotone) but the client — and therefore
        // the collected history — sees a commit instant from the past, never
        // earlier than the transaction's own begin.
        let reported = if self.faults.commit_ts_skew == 0 {
            commit_ts
        } else {
            commit_ts
                .saturating_sub(self.faults.commit_ts_skew)
                .max(self.begin_ts)
        };
        Ok(CommitInfo {
            commit_ts: reported,
        })
    }

    /// Rolls the transaction back. Buffered writes are discarded.
    pub fn abort(self) -> AbortReason {
        AbortReason::UserAbort
    }
}

// The simulated engine's operations never fail mid-transaction (all
// validation happens at commit), so the trait surface wraps the inherent
// methods in `Ok`.
impl<'db> crate::backend::DbTxn for TxnHandle<'db> {
    fn begin_ts(&self) -> u64 {
        TxnHandle::begin_ts(self)
    }

    fn read_register(&mut self, key: Key) -> Result<Value, AbortReason> {
        Ok(TxnHandle::read_register(self, key))
    }

    fn write_register(&mut self, key: Key, value: Value) -> Result<(), AbortReason> {
        TxnHandle::write_register(self, key, value);
        Ok(())
    }

    fn read_list(&mut self, key: Key) -> Result<Vec<Value>, AbortReason> {
        Ok(TxnHandle::read_list(self, key))
    }

    fn append(&mut self, key: Key, element: Value) -> Result<(), AbortReason> {
        TxnHandle::append(self, key, element);
        Ok(())
    }

    fn commit(self: Box<Self>) -> Result<CommitInfo, AbortReason> {
        TxnHandle::commit(*self)
    }

    fn abort(self: Box<Self>) -> AbortReason {
        TxnHandle::abort(*self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{DbConfig, IsolationMode};
    use crate::faults::{FaultKind, FaultSpec};

    fn db(mode: IsolationMode) -> Database {
        Database::new(DbConfig::correct(mode, 4))
    }

    #[test]
    fn read_your_own_writes() {
        let db = db(IsolationMode::Serializable);
        let mut t = db.begin();
        assert_eq!(t.read_register(Key(0)), INIT_VALUE);
        t.write_register(Key(0), Value(42));
        assert_eq!(t.read_register(Key(0)), Value(42));
        t.commit().unwrap();
        assert_eq!(db.store().current_register(Key(0)), Value(42));
    }

    #[test]
    fn snapshot_isolation_hides_concurrent_commits() {
        let db = db(IsolationMode::Snapshot);
        let mut t1 = db.begin();
        // t2 commits a new value after t1 began.
        let mut t2 = db.begin();
        t2.write_register(Key(0), Value(7));
        t2.commit().unwrap();
        // t1 still sees the initial value.
        assert_eq!(t1.read_register(Key(0)), INIT_VALUE);
    }

    #[test]
    fn read_committed_sees_latest() {
        let db = db(IsolationMode::ReadCommitted);
        let mut t1 = db.begin();
        let mut t2 = db.begin();
        t2.write_register(Key(0), Value(7));
        t2.commit().unwrap();
        assert_eq!(t1.read_register(Key(0)), Value(7));
    }

    #[test]
    fn first_committer_wins_aborts_the_second_writer() {
        let db = db(IsolationMode::Snapshot);
        let mut t1 = db.begin();
        let mut t2 = db.begin();
        t1.write_register(Key(0), Value(1));
        t2.write_register(Key(0), Value(2));
        assert!(t1.commit().is_ok());
        assert_eq!(t2.commit(), Err(AbortReason::WriteConflict));
        assert_eq!(db.store().current_register(Key(0)), Value(1));
    }

    #[test]
    fn serializable_read_validation_prevents_write_skew() {
        let db = db(IsolationMode::Serializable);
        let mut t1 = db.begin();
        let mut t2 = db.begin();
        // Classic write skew: each reads both keys, writes the other one.
        t1.read_register(Key(0));
        t1.read_register(Key(1));
        t2.read_register(Key(0));
        t2.read_register(Key(1));
        t1.write_register(Key(0), Value(10));
        t2.write_register(Key(1), Value(20));
        assert!(t1.commit().is_ok());
        assert_eq!(t2.commit(), Err(AbortReason::ReadConflict));
    }

    #[test]
    fn snapshot_mode_allows_write_skew() {
        let db = db(IsolationMode::Snapshot);
        let mut t1 = db.begin();
        let mut t2 = db.begin();
        t1.read_register(Key(0));
        t1.read_register(Key(1));
        t2.read_register(Key(0));
        t2.read_register(Key(1));
        t1.write_register(Key(0), Value(10));
        t2.write_register(Key(1), Value(20));
        assert!(t1.commit().is_ok());
        assert!(t2.commit().is_ok(), "SI must allow disjoint-key write skew");
    }

    #[test]
    fn skip_write_validation_fault_permits_lost_updates() {
        let cfg = DbConfig::correct(IsolationMode::Snapshot, 2)
            .with_faults(vec![FaultSpec::new(FaultKind::SkipWriteValidation, 1.0)], 1);
        let db = Database::new(cfg);
        let mut t1 = db.begin();
        let mut t2 = db.begin();
        t1.read_register(Key(0));
        t2.read_register(Key(0));
        t1.write_register(Key(0), Value(1));
        t2.write_register(Key(0), Value(2));
        assert!(t1.commit().is_ok());
        assert!(
            t2.commit().is_ok(),
            "fault must disable first-committer-wins"
        );
    }

    #[test]
    fn dirty_release_publishes_and_aborts() {
        let cfg = DbConfig::correct(IsolationMode::Snapshot, 1)
            .with_faults(vec![FaultSpec::new(FaultKind::DirtyRelease, 1.0)], 2);
        let db = Database::new(cfg);
        let mut t = db.begin();
        t.read_register(Key(0));
        t.write_register(Key(0), Value(99));
        assert_eq!(t.commit(), Err(AbortReason::InjectedAbort));
        // The "aborted" value is nevertheless visible.
        assert_eq!(db.store().current_register(Key(0)), Value(99));
    }

    #[test]
    fn lists_append_accumulates_elements() {
        let db = Database::new(DbConfig::correct(IsolationMode::Serializable, 0));
        let mut t1 = db.begin();
        t1.append(Key(9), Value(1));
        t1.append(Key(9), Value(2));
        t1.commit().unwrap();
        let mut t2 = db.begin();
        assert_eq!(t2.read_list(Key(9)), vec![Value(1), Value(2)]);
        t2.append(Key(9), Value(3));
        t2.commit().unwrap();
        let mut t3 = db.begin();
        assert_eq!(t3.read_list(Key(9)), vec![Value(1), Value(2), Value(3)]);
    }

    #[test]
    fn user_abort_discards_writes() {
        let db = db(IsolationMode::Serializable);
        let mut t = db.begin();
        t.write_register(Key(0), Value(5));
        assert_eq!(t.abort(), AbortReason::UserAbort);
        assert_eq!(db.store().current_register(Key(0)), INIT_VALUE);
    }

    #[test]
    fn read_only_transactions_always_commit() {
        let db = db(IsolationMode::Snapshot);
        let mut t1 = db.begin();
        t1.read_register(Key(0));
        let mut t2 = db.begin();
        t2.write_register(Key(0), Value(3));
        t2.commit().unwrap();
        assert!(t1.commit().is_ok());
    }

    #[test]
    fn write_set_tracks_first_write_order() {
        let db = db(IsolationMode::Serializable);
        let mut t = db.begin();
        t.write_register(Key(2), Value(1));
        t.write_register(Key(0), Value(2));
        t.write_register(Key(2), Value(3));
        assert_eq!(t.write_set(), &[Key(2), Key(0)]);
    }

    #[test]
    fn commit_timestamp_skew_reports_a_past_instant() {
        let cfg = DbConfig::correct(IsolationMode::Snapshot, 1)
            .with_faults(vec![FaultSpec::new(FaultKind::CommitTimestampSkew, 1.0)], 3);
        let db = Database::new(cfg);
        let mut t = db.begin(); // begin_ts = 1
        t.read_register(Key(0));
        t.write_register(Key(0), Value(7));
        let begin = t.begin_ts();
        let info = t.commit().unwrap(); // installs at ts 2, skew >= 8 clamps to begin
        assert_eq!(
            info.commit_ts, begin,
            "skew must clamp at the begin instant"
        );
        // The store still installed the version at the true (later) instant.
        assert!(db.store().read(Key(0), begin, 0).unwrap().commit_ts == 0);
        assert_eq!(db.store().current_register(Key(0)), Value(7));
    }

    #[test]
    fn commit_timestamp_skew_produces_an_sser_only_violation() {
        use mtc_history::HistoryBuilder;
        // T1 writes x inside [1, 3] but, skewed, reports [1, 1]. T2 begins at
        // 2 — after T1's *reported* commit — and still reads the initial
        // value: a stale read after (claimed) commit. SER and SI accept the
        // history (T2 merely serializes before T1); SSER rejects it.
        let cfg = DbConfig::correct(IsolationMode::Snapshot, 1)
            .with_faults(vec![FaultSpec::new(FaultKind::CommitTimestampSkew, 1.0)], 3);
        let db = Database::new(cfg);
        let mut t1 = db.begin(); // begin_ts = 1
        t1.read_register(Key(0));
        t1.write_register(Key(0), Value(10));
        let b1 = t1.begin_ts();
        let mut t2 = db.begin(); // begin_ts = 2, inside T1's true window
        let b2 = t2.begin_ts();
        let read = t2.read_register(Key(0));
        assert_eq!(read, INIT_VALUE, "T1 is uncommitted at T2's snapshot");
        let i1 = t1.commit().unwrap();
        let i2 = t2.commit().unwrap();
        assert!(
            i1.commit_ts < b2,
            "the skew must backdate T1 past T2's begin"
        );

        let mut builder = HistoryBuilder::new().with_init(1);
        builder.committed_timed(
            0,
            vec![
                mtc_history::Op::read(0u64, 0u64),
                mtc_history::Op::write(0u64, 10u64),
            ],
            b1,
            i1.commit_ts,
        );
        builder.committed_timed(1, vec![mtc_history::Op::read(0u64, 0u64)], b2, i2.commit_ts);
        let h = builder.build();
        assert!(mtc_core::check_ser(&h).unwrap().is_satisfied());
        assert!(mtc_core::check_si(&h).unwrap().is_satisfied());
        assert!(mtc_core::check_sser(&h).unwrap().is_violated());
        assert!(mtc_core::check_sser_naive(&h).unwrap().is_violated());
    }

    #[test]
    fn abort_reason_display() {
        assert_eq!(
            AbortReason::WriteConflict.to_string(),
            "write-write conflict"
        );
        assert_eq!(AbortReason::InjectedAbort.to_string(), "injected abort");
    }
}
