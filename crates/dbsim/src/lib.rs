//! # mtc-dbsim
//!
//! An in-process, multi-versioned, transactional key-value store used as the
//! *system under test* throughout this repository.
//!
//! The paper runs its end-to-end experiments against PostgreSQL, MongoDB,
//! MariaDB Galera, Dgraph and Cassandra. Those systems are replaced here by a
//! simulator that preserves exactly the properties the experiments measure:
//!
//! * **client-visible histories** — concurrent sessions issue transactions,
//!   read committed versions, and obtain begin/commit wall-clock timestamps;
//! * **contention behaviour** — optimistic concurrency control with
//!   first-committer-wins (snapshot isolation) or commit-time read validation
//!   (serializability), so longer transactions and more skewed key access
//!   yield higher abort rates (Figure 11);
//! * **execution cost** — a configurable per-operation latency models the
//!   cost of talking to a real database, so history-generation time grows
//!   with transaction length and abort/retry counts (Figures 10, 14, 17);
//! * **isolation bugs** — a fault-injection layer ([`faults`]) can violate
//!   the promised isolation level in the precise ways needed to reproduce the
//!   Table II anomalies (lost update, write skew, long fork, aborted read,
//!   causality violation, read uncommitted).
//!
//! The store supports registers (`u64` values) and append-only lists, the two
//! data models needed by the MT/GT and Elle-style workloads respectively.
//!
//! Since the pluggable-backend refactor the simulator is only *one* system
//! under test among several: the [`backend`] module defines the
//! [`DbBackend`]/[`DbTxn`] traits every engine implements, and [`backends`]
//! ships a pessimistic strict-2PL engine (wait-die) plus a weak MVCC engine
//! whose ReadCommitted/ReadUncommitted anomalies arise from the concurrency
//! control itself rather than from fault injection. The client drivers are
//! backend-generic and unified behind one entry point: pick a [`Driver`]
//! (threaded, deterministic-interleaved, or async-multiplexed), configure an
//! [`ExecutionOptions`] builder — optionally attaching a streaming
//! [`LiveVerifier`] — and call [`ExecutionOptions::run`]. The historical
//! per-driver free functions (`execute_workload`,
//! `execute_workload_interleaved`, `execute_workload_async`,
//! `execute_workload_live`) survive as thin deprecated wrappers.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod async_exec;
pub mod backend;
pub mod backends;
pub mod client;
pub mod config;
pub mod db;
pub mod driver;
pub mod faults;
pub mod live;
pub mod store;
pub mod txn;

#[allow(deprecated)]
pub use async_exec::execute_workload_async;
pub use async_exec::AsyncOptions;
pub use backend::{DbBackend, DbTxn};
pub use backends::{BackendSpec, TwoPlDatabase, WeakLevel, WeakMvccDatabase};
#[allow(deprecated)]
pub use client::{execute_workload, execute_workload_interleaved};
pub use client::{ClientOptions, ExecutionReport};
pub use config::{DbConfig, IsolationMode};
pub use db::Database;
pub use driver::{Driver, ExecutionOptions};
pub use faults::{FaultKind, FaultSpec};
#[allow(deprecated)]
pub use live::execute_workload_live;
pub use live::{
    ExecutionReportLive, IngestEvent, LiveOutcome, LiveVerifier, LiveVerifierBuilder,
    LiveViolation, SinkStats,
};
pub use store::StoredValue;
pub use txn::{AbortReason, CommitInfo, TxnHandle};
