//! The database façade: clock, store, commit mutex and transaction entry
//! point.

use crate::config::DbConfig;
use crate::faults::ActiveFaults;
use crate::store::Store;
use crate::txn::TxnHandle;
use parking_lot::Mutex;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::atomic::{AtomicU64, Ordering};

/// A simulated database instance.
///
/// The database keeps a single logical clock used both as the MVCC commit
/// timestamp and as the begin/end instants recorded in collected histories.
/// Because the clock is advanced on every begin and every commit, timestamp
/// order is consistent with real time inside the process, so
/// strict-serializability checks over the recorded instants are meaningful.
pub struct Database {
    pub(crate) store: Store,
    pub(crate) config: DbConfig,
    clock: AtomicU64,
    pub(crate) commit_lock: Mutex<()>,
    fault_rng: Mutex<StdRng>,
}

impl Database {
    /// Creates a database from a configuration. The `num_keys` register keys
    /// are pre-initialized with the initial value at timestamp 0.
    pub fn new(config: DbConfig) -> Self {
        Database {
            store: Store::with_register_keys(config.num_keys),
            clock: AtomicU64::new(1),
            commit_lock: Mutex::new(()),
            fault_rng: Mutex::new(StdRng::seed_from_u64(config.fault_seed)),
            config,
        }
    }

    /// The database configuration.
    pub fn config(&self) -> &DbConfig {
        &self.config
    }

    /// Direct access to the underlying store (for inspection in tests,
    /// examples and the Elle executors).
    pub fn store(&self) -> &Store {
        &self.store
    }

    /// Returns a fresh, strictly increasing timestamp.
    pub fn tick(&self) -> u64 {
        self.clock.fetch_add(1, Ordering::SeqCst)
    }

    /// The most recently issued timestamp.
    pub fn now(&self) -> u64 {
        self.clock.load(Ordering::SeqCst)
    }

    /// Begins a transaction: draws the active faults, takes a begin
    /// timestamp and a snapshot timestamp.
    pub fn begin(&self) -> TxnHandle<'_> {
        let faults = {
            let mut rng = self.fault_rng.lock();
            ActiveFaults::draw(&self.config.faults, &mut rng)
        };
        let begin_ts = self.tick();
        TxnHandle::new(self, begin_ts, faults)
    }
}

impl crate::backend::DbBackend for Database {
    fn begin(&self) -> Box<dyn crate::backend::DbTxn + '_> {
        Box::new(Database::begin(self))
    }

    fn now(&self) -> u64 {
        Database::now(self)
    }

    fn label(&self) -> &'static str {
        use crate::config::IsolationMode;
        match self.config.isolation {
            IsolationMode::ReadCommitted => "sim-rc",
            IsolationMode::Snapshot => "sim-si",
            IsolationMode::Serializable => "sim-ser",
            IsolationMode::StrictSerializable => "sim-sser",
        }
    }

    /// The simulator promises whatever its configured mode provides —
    /// *when no faults are injected*. With faults configured the claim
    /// stands (that is the point of fault injection: the checker's job is
    /// to catch the engine lying about its level), so `promises` reports
    /// the claimed level regardless of the fault specification.
    fn promises(&self, level: mtc_core::IsolationLevel) -> bool {
        use crate::config::IsolationMode;
        use mtc_core::IsolationLevel::*;
        match self.config.isolation {
            IsolationMode::ReadCommitted => false,
            IsolationMode::Snapshot => matches!(level, SnapshotIsolation),
            // The OCC engine validates reads and writes against the begin
            // snapshot and commits on a single logical clock, so its
            // histories are strictly serializable, not merely serializable
            // (see `IsolationMode::StrictSerializable`'s doc).
            IsolationMode::Serializable | IsolationMode::StrictSerializable => {
                matches!(
                    level,
                    SnapshotIsolation | Serializability | StrictSerializability
                )
            }
        }
    }
}

impl std::fmt::Debug for Database {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Database")
            .field("isolation", &self.config.isolation)
            .field("keys", &self.store.key_count())
            .field("versions", &self.store.version_count())
            .field("now", &self.now())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::IsolationMode;

    #[test]
    fn clock_is_strictly_increasing() {
        let db = Database::new(DbConfig::correct(IsolationMode::Serializable, 1));
        let a = db.tick();
        let b = db.tick();
        let c = db.tick();
        assert!(a < b && b < c);
        assert!(db.now() > c);
    }

    #[test]
    fn debug_rendering_mentions_isolation() {
        let db = Database::new(DbConfig::correct(IsolationMode::Snapshot, 5));
        let s = format!("{db:?}");
        assert!(s.contains("Snapshot"));
        assert!(s.contains('5'));
    }
}
