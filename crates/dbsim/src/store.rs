//! The multi-version storage layer.
//!
//! Every key maps to a chain of committed versions ordered by commit
//! timestamp. Reads select the newest version visible at a snapshot
//! timestamp; commits append new versions. The store itself is isolation-
//! agnostic — all policy (snapshots, validation, faults) lives in
//! [`crate::txn`].

use mtc_history::{Key, Value, INIT_VALUE};
use parking_lot::RwLock;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// A stored value: either a register or an append-only list.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum StoredValue {
    /// A single 64-bit register value.
    Register(Value),
    /// An append-only list of elements.
    List(Vec<Value>),
}

impl StoredValue {
    /// The register value, if this is a register.
    pub fn as_register(&self) -> Option<Value> {
        match self {
            StoredValue::Register(v) => Some(*v),
            StoredValue::List(_) => None,
        }
    }

    /// The list elements, if this is a list.
    pub fn as_list(&self) -> Option<&[Value]> {
        match self {
            StoredValue::List(l) => Some(l),
            StoredValue::Register(_) => None,
        }
    }
}

/// One committed version of a key.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Version {
    /// Commit timestamp that installed the version.
    pub commit_ts: u64,
    /// The value installed.
    pub value: StoredValue,
}

/// The version chain of a single key, ordered by ascending commit timestamp.
#[derive(Clone, Debug, Default)]
pub struct VersionChain {
    versions: Vec<Version>,
}

impl VersionChain {
    /// Creates a chain with a single initial version.
    pub fn with_initial(value: StoredValue) -> Self {
        VersionChain {
            versions: vec![Version {
                commit_ts: 0,
                value,
            }],
        }
    }

    /// Number of versions.
    pub fn len(&self) -> usize {
        self.versions.len()
    }

    /// True iff the chain has no versions.
    pub fn is_empty(&self) -> bool {
        self.versions.is_empty()
    }

    /// The newest version.
    pub fn latest(&self) -> Option<&Version> {
        self.versions.last()
    }

    /// The newest version with `commit_ts <= snapshot_ts`, optionally
    /// skipping the `skip_recent` newest such versions (used by the
    /// stale-snapshot fault). Returns `None` if nothing is visible.
    pub fn visible_at(&self, snapshot_ts: u64, skip_recent: usize) -> Option<&Version> {
        let visible: Vec<&Version> = self
            .versions
            .iter()
            .filter(|v| v.commit_ts <= snapshot_ts)
            .collect();
        if visible.is_empty() {
            return None;
        }
        let idx = visible.len().saturating_sub(skip_recent.saturating_add(1));
        Some(visible[idx.min(visible.len() - 1)])
    }

    /// True iff some version is newer than `snapshot_ts`.
    pub fn has_newer_than(&self, snapshot_ts: u64) -> bool {
        self.versions
            .last()
            .map(|v| v.commit_ts > snapshot_ts)
            .unwrap_or(false)
    }

    /// Appends a version. Panics if the commit timestamp does not increase.
    pub fn push(&mut self, version: Version) {
        if let Some(last) = self.versions.last() {
            assert!(
                version.commit_ts >= last.commit_ts,
                "commit timestamps must be monotone"
            );
        }
        self.versions.push(version);
    }
}

/// The shared, thread-safe store.
#[derive(Debug, Default)]
pub struct Store {
    map: RwLock<HashMap<Key, VersionChain>>,
}

impl Store {
    /// Creates a store with `num_keys` registers pre-initialized to the
    /// initial value at commit timestamp 0 (the `⊥T` transaction).
    pub fn with_register_keys(num_keys: u64) -> Self {
        let mut map = HashMap::with_capacity(num_keys as usize);
        for k in 0..num_keys {
            map.insert(
                Key(k),
                VersionChain::with_initial(StoredValue::Register(INIT_VALUE)),
            );
        }
        Store {
            map: RwLock::new(map),
        }
    }

    /// Reads the version of `key` visible at `snapshot_ts`. A missing key or
    /// an empty chain yields `None` (the caller substitutes the implicit
    /// initial value).
    pub fn read(&self, key: Key, snapshot_ts: u64, skip_recent: usize) -> Option<Version> {
        self.map
            .read()
            .get(&key)
            .and_then(|c| c.visible_at(snapshot_ts, skip_recent))
            .cloned()
    }

    /// The newest committed version of `key`.
    pub fn read_latest(&self, key: Key) -> Option<Version> {
        self.map.read().get(&key).and_then(|c| c.latest()).cloned()
    }

    /// True iff `key` has a version newer than `snapshot_ts`.
    pub fn has_newer_than(&self, key: Key, snapshot_ts: u64) -> bool {
        self.map
            .read()
            .get(&key)
            .map(|c| c.has_newer_than(snapshot_ts))
            .unwrap_or(false)
    }

    /// Installs `value` for `key` at `commit_ts`.
    pub fn install(&self, key: Key, commit_ts: u64, value: StoredValue) {
        self.map
            .write()
            .entry(key)
            .or_default()
            .push(Version { commit_ts, value });
    }

    /// Installs a whole write set atomically (the caller must hold the commit
    /// mutex so that timestamps stay monotone per chain).
    pub fn install_all<'a>(
        &self,
        commit_ts: u64,
        writes: impl IntoIterator<Item = (Key, &'a StoredValue)>,
    ) {
        let mut map = self.map.write();
        for (key, value) in writes {
            map.entry(key).or_default().push(Version {
                commit_ts,
                value: value.clone(),
            });
        }
    }

    /// Number of keys with at least one version.
    pub fn key_count(&self) -> usize {
        self.map.read().len()
    }

    /// Total number of versions across all keys (storage footprint proxy).
    pub fn version_count(&self) -> usize {
        self.map.read().values().map(VersionChain::len).sum()
    }

    /// The current register value of `key` (latest version), interpreting a
    /// missing key as the initial value. Intended for tests and examples.
    pub fn current_register(&self, key: Key) -> Value {
        self.read_latest(key)
            .and_then(|v| v.value.as_register())
            .unwrap_or(INIT_VALUE)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn initial_registers_are_visible_at_any_snapshot() {
        let store = Store::with_register_keys(3);
        assert_eq!(store.key_count(), 3);
        let v = store.read(Key(1), 0, 0).unwrap();
        assert_eq!(v.commit_ts, 0);
        assert_eq!(v.value, StoredValue::Register(INIT_VALUE));
        assert!(store.read(Key(7), 10, 0).is_none());
    }

    #[test]
    fn snapshot_reads_see_only_older_versions() {
        let store = Store::with_register_keys(1);
        store.install(Key(0), 5, StoredValue::Register(Value(50)));
        store.install(Key(0), 9, StoredValue::Register(Value(90)));
        assert_eq!(
            store.read(Key(0), 4, 0).unwrap().value,
            StoredValue::Register(INIT_VALUE)
        );
        assert_eq!(
            store.read(Key(0), 5, 0).unwrap().value,
            StoredValue::Register(Value(50))
        );
        assert_eq!(
            store.read(Key(0), 100, 0).unwrap().value,
            StoredValue::Register(Value(90))
        );
        assert_eq!(store.current_register(Key(0)), Value(90));
    }

    #[test]
    fn stale_snapshot_skips_recent_versions() {
        let store = Store::with_register_keys(1);
        store.install(Key(0), 5, StoredValue::Register(Value(50)));
        store.install(Key(0), 9, StoredValue::Register(Value(90)));
        let v = store.read(Key(0), 100, 1).unwrap();
        assert_eq!(v.value, StoredValue::Register(Value(50)));
        // Skipping more versions than exist still returns the oldest one.
        let v = store.read(Key(0), 100, 10).unwrap();
        assert_eq!(v.value, StoredValue::Register(INIT_VALUE));
    }

    #[test]
    fn newer_than_detection() {
        let store = Store::with_register_keys(1);
        assert!(!store.has_newer_than(Key(0), 0));
        store.install(Key(0), 7, StoredValue::Register(Value(1)));
        assert!(store.has_newer_than(Key(0), 3));
        assert!(!store.has_newer_than(Key(0), 7));
        assert!(!store.has_newer_than(Key(99), 0));
    }

    #[test]
    fn lists_grow_by_whole_values() {
        let store = Store::default();
        store.install(Key(4), 3, StoredValue::List(vec![Value(1)]));
        store.install(Key(4), 6, StoredValue::List(vec![Value(1), Value(2)]));
        let v = store.read(Key(4), 10, 0).unwrap();
        assert_eq!(v.value.as_list().unwrap(), &[Value(1), Value(2)]);
        assert_eq!(store.version_count(), 2);
    }

    #[test]
    fn install_all_is_atomic_per_timestamp() {
        let store = Store::with_register_keys(2);
        let w0 = StoredValue::Register(Value(10));
        let w1 = StoredValue::Register(Value(11));
        store.install_all(4, vec![(Key(0), &w0), (Key(1), &w1)]);
        assert_eq!(store.read(Key(0), 4, 0).unwrap().commit_ts, 4);
        assert_eq!(store.read(Key(1), 4, 0).unwrap().commit_ts, 4);
    }

    #[test]
    #[should_panic(expected = "monotone")]
    fn non_monotone_commit_timestamps_panic() {
        let mut chain = VersionChain::with_initial(StoredValue::Register(INIT_VALUE));
        chain.push(Version {
            commit_ts: 5,
            value: StoredValue::Register(Value(1)),
        });
        chain.push(Version {
            commit_ts: 3,
            value: StoredValue::Register(Value(2)),
        });
    }

    #[test]
    fn visible_at_with_skip_recent_larger_than_the_chain_returns_the_oldest() {
        let mut chain = VersionChain::with_initial(StoredValue::Register(INIT_VALUE));
        chain.push(Version {
            commit_ts: 3,
            value: StoredValue::Register(Value(30)),
        });
        chain.push(Version {
            commit_ts: 8,
            value: StoredValue::Register(Value(80)),
        });
        // skip_recent far beyond the chain length must clamp to the oldest
        // visible version, never panic or underflow.
        for skip in [3usize, 10, usize::MAX] {
            let v = chain.visible_at(100, skip).unwrap();
            assert_eq!(v.commit_ts, 0, "skip={skip}");
            assert_eq!(v.value, StoredValue::Register(INIT_VALUE));
        }
        // Same when only a suffix of the chain is visible.
        let v = chain.visible_at(3, 5).unwrap();
        assert_eq!(v.commit_ts, 0);
    }

    #[test]
    fn visible_at_before_the_first_version_yields_none() {
        // A chain whose oldest version postdates the snapshot has nothing
        // to offer (the caller substitutes the implicit initial value).
        let mut chain = VersionChain::default();
        chain.push(Version {
            commit_ts: 5,
            value: StoredValue::Register(Value(50)),
        });
        assert!(chain.visible_at(4, 0).is_none());
        assert!(chain.visible_at(4, 3).is_none());
        assert!(chain.visible_at(0, 0).is_none());
        // The empty chain is the degenerate case of the same rule.
        let empty = VersionChain::default();
        assert!(empty.is_empty());
        assert!(empty.visible_at(u64::MAX, 0).is_none());
        assert!(!empty.has_newer_than(0));
    }

    #[test]
    fn equal_timestamp_versions_prefer_the_last_installed() {
        // `install_all` installs a whole write set at one commit timestamp;
        // a chain may therefore hold equal-timestamp versions (same-ts
        // pushes are allowed by the monotonicity assertion). Visibility at
        // that instant must return the newest install, and `skip_recent`
        // must step through the equal-timestamp group deterministically.
        let mut chain = VersionChain::with_initial(StoredValue::Register(INIT_VALUE));
        chain.push(Version {
            commit_ts: 7,
            value: StoredValue::Register(Value(71)),
        });
        chain.push(Version {
            commit_ts: 7,
            value: StoredValue::Register(Value(72)),
        });
        assert_eq!(chain.len(), 3);
        assert_eq!(
            chain.visible_at(7, 0).unwrap().value,
            StoredValue::Register(Value(72))
        );
        assert_eq!(
            chain.visible_at(7, 1).unwrap().value,
            StoredValue::Register(Value(71))
        );
        assert_eq!(
            chain.visible_at(7, 2).unwrap().value,
            StoredValue::Register(INIT_VALUE)
        );
        // `has_newer_than` is strict: an equal-timestamp version is not
        // "newer" than the snapshot taken at that same instant.
        assert!(!chain.has_newer_than(7));
        assert!(chain.has_newer_than(6));
        assert_eq!(
            chain.latest().unwrap().value,
            StoredValue::Register(Value(72))
        );
    }

    #[test]
    fn stored_value_accessors() {
        assert_eq!(
            StoredValue::Register(Value(3)).as_register(),
            Some(Value(3))
        );
        assert_eq!(StoredValue::Register(Value(3)).as_list(), None);
        assert_eq!(StoredValue::List(vec![]).as_register(), None);
    }
}
