//! The multi-threaded client driver: executes a register workload against a
//! database and collects the unified execution history (steps ①–③ of the
//! black-box checking workflow, Figure 2 of the paper).
//!
//! Each session runs on its own thread, issues its transaction templates in
//! order, assigns unique values to writes from its per-session allocator,
//! records begin/commit timestamps, and retries aborted transactions up to a
//! configurable bound. The per-session logs are then merged into a single
//! [`History`] whose initial transaction `⊥T` covers the pre-initialized key
//! space.

use crate::db::Database;
use crate::txn::AbortReason;
use mtc_history::{History, HistoryBuilder, Op, TxnStatus, ValueAllocator};
use mtc_workload::{ReqOp, Workload};
use serde::{Deserialize, Serialize};
use std::time::{Duration, Instant};

/// Client-side execution options.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct ClientOptions {
    /// How many times an aborted transaction template is retried before the
    /// client gives up on it (0 = no retries).
    pub max_retries: u32,
    /// Record aborted attempts in the history (needed to detect
    /// `ABORTEDREAD`-style anomalies; the paper's checkers assume aborted
    /// transactions are visible in the log).
    pub record_aborted: bool,
}

impl Default for ClientOptions {
    fn default() -> Self {
        ClientOptions {
            max_retries: 3,
            record_aborted: true,
        }
    }
}

/// Statistics of one workload execution.
#[derive(Clone, Copy, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct ExecutionReport {
    /// Transaction templates that eventually committed.
    pub committed: usize,
    /// Templates that never committed (all attempts aborted).
    pub failed: usize,
    /// Total attempts (committed + every aborted attempt).
    pub attempts: usize,
    /// Aborted attempts.
    pub aborted_attempts: usize,
    /// Wall-clock duration of history generation.
    pub wall_time: Duration,
}

impl ExecutionReport {
    /// Fraction of attempts that aborted — the abort rate of Figure 11.
    pub fn abort_rate(&self) -> f64 {
        if self.attempts == 0 {
            0.0
        } else {
            self.aborted_attempts as f64 / self.attempts as f64
        }
    }
}

/// A transaction record produced by one client thread.
struct TxnRecord {
    session: u32,
    ops: Vec<Op>,
    status: TxnStatus,
    begin: u64,
    end: u64,
}

/// Executes `workload` against `db` with one thread per session and returns
/// the collected history together with execution statistics.
pub fn execute_workload(
    db: &Database,
    workload: &Workload,
    opts: &ClientOptions,
) -> (History, ExecutionReport) {
    let start = Instant::now();
    let mut session_logs: Vec<(u32, Vec<TxnRecord>, SessionStats)> = Vec::new();

    std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for session in &workload.sessions {
            handles
                .push(scope.spawn(move || run_session(db, session.session, &session.txns, opts)));
        }
        for h in handles {
            session_logs.push(h.join().expect("client thread panicked"));
        }
    });

    // Deterministic assembly order: by session id.
    session_logs.sort_by_key(|(s, _, _)| *s);

    let mut report = ExecutionReport {
        wall_time: start.elapsed(),
        ..ExecutionReport::default()
    };
    let mut builder = HistoryBuilder::new().with_init(workload.num_keys);
    for (_, records, stats) in session_logs {
        report.committed += stats.committed;
        report.failed += stats.failed;
        report.attempts += stats.attempts;
        report.aborted_attempts += stats.aborted_attempts;
        for r in records {
            builder.push_timed(r.session, r.ops, r.status, r.begin, r.end);
        }
    }
    (builder.build(), report)
}

// ───────────────────────── internal helpers ─────────────────────────────────

struct SessionStats {
    committed: usize,
    failed: usize,
    attempts: usize,
    aborted_attempts: usize,
}

fn run_session(
    db: &Database,
    session: u32,
    templates: &[mtc_workload::TxnTemplate],
    opts: &ClientOptions,
) -> (u32, Vec<TxnRecord>, SessionStats) {
    let mut allocator = ValueAllocator::new(session);
    let mut records = Vec::with_capacity(templates.len());
    let mut stats = SessionStats {
        committed: 0,
        failed: 0,
        attempts: 0,
        aborted_attempts: 0,
    };

    for template in templates {
        let mut attempt = 0;
        loop {
            attempt += 1;
            stats.attempts += 1;
            let mut handle = db.begin();
            let begin = handle.begin_ts();
            let mut ops = Vec::with_capacity(template.ops.len());
            for op in &template.ops {
                match *op {
                    ReqOp::Read(key) => {
                        let v = handle.read_register(key);
                        ops.push(Op::Read { key, value: v });
                    }
                    ReqOp::Write(key) => {
                        let v = allocator.next();
                        handle.write_register(key, v);
                        ops.push(Op::Write { key, value: v });
                    }
                }
            }
            match handle.commit() {
                Ok(info) => {
                    stats.committed += 1;
                    records.push(TxnRecord {
                        session,
                        ops,
                        status: TxnStatus::Committed,
                        begin,
                        end: info.commit_ts,
                    });
                    break;
                }
                Err(reason) => {
                    stats.aborted_attempts += 1;
                    if opts.record_aborted {
                        records.push(TxnRecord {
                            session,
                            ops,
                            status: TxnStatus::Aborted,
                            begin,
                            end: db.now(),
                        });
                    }
                    // An InjectedAbort already published its writes; retrying
                    // it would duplicate values, so treat it as final.
                    let retry = attempt <= opts.max_retries && reason != AbortReason::InjectedAbort;
                    if !retry {
                        stats.failed += 1;
                        break;
                    }
                }
            }
        }
    }
    (session, records, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{DbConfig, IsolationMode};
    use mtc_workload::{generate_mt_workload, Distribution, MtWorkloadSpec};

    fn spec(sessions: u32, txns: u32, keys: u64) -> MtWorkloadSpec {
        MtWorkloadSpec {
            sessions,
            txns_per_session: txns,
            num_keys: keys,
            distribution: Distribution::Uniform,
            read_only_fraction: 0.2,
            two_key_fraction: 0.5,
            seed: 5,
        }
    }

    #[test]
    fn executes_a_small_workload_and_counts_add_up() {
        let db = Database::new(DbConfig::correct(IsolationMode::Serializable, 20));
        let workload = generate_mt_workload(&spec(4, 50, 20));
        let (history, report) = execute_workload(&db, &workload, &ClientOptions::default());
        assert_eq!(report.committed + report.failed, workload.txn_count());
        assert_eq!(report.attempts, report.committed + report.aborted_attempts);
        assert_eq!(history.committed_count(), report.committed + 1); // + ⊥T
        assert!(history.has_init());
        assert!(history.has_unique_values());
        assert!(report.abort_rate() <= 1.0);
    }

    #[test]
    fn histories_have_timestamps_on_committed_transactions() {
        let db = Database::new(DbConfig::correct(IsolationMode::Serializable, 10));
        let workload = generate_mt_workload(&spec(2, 20, 10));
        let (history, _) = execute_workload(&db, &workload, &ClientOptions::default());
        for t in history.committed() {
            assert!(t.begin.is_some(), "{t:?} lacks a begin timestamp");
            assert!(t.end.is_some(), "{t:?} lacks an end timestamp");
        }
    }
}
