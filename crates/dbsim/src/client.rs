//! The multi-threaded client driver: executes a register workload against a
//! system under test and collects the unified execution history (steps ①–③
//! of the black-box checking workflow, Figure 2 of the paper).
//!
//! The driver is **backend-generic**: it talks to any [`DbBackend`] — the
//! OCC simulator, the strict-2PL engine, the weak MVCC engine, or anything
//! a caller implements. Each session runs on its own thread, issues its
//! transaction templates in order, assigns unique values to writes from its
//! per-session allocator, records begin/commit timestamps, and retries
//! aborted transactions up to a configurable bound. The per-session logs
//! are then merged into a single [`History`] whose initial transaction `⊥T`
//! covers the pre-initialized key space.
//!
//! A deterministic single-thread variant, [`execute_workload_interleaved`],
//! interleaves the sessions op-by-op from a seeded schedule — the tool the
//! conformance suite uses to make organic anomalies reproducible.

use crate::backend::{DbBackend, DbTxn};
use crate::live::LiveVerifier;
use crate::txn::AbortReason;
use mtc_history::{History, HistoryBuilder, Op, TxnStatus, ValueAllocator};
use mtc_workload::{ReqOp, Workload};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use std::time::{Duration, Instant};

/// Client-side execution options.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct ClientOptions {
    /// How many times an aborted transaction template is **retried** after
    /// its first attempt, so a template is attempted at most
    /// `max_retries + 1` times (0 = a single attempt, no retries). Every
    /// driver — threaded, interleaved, live and async — decides retries
    /// through [`ClientOptions::should_retry`], so the bound cannot drift
    /// between call sites again; `tests::max_retries_counts_retries_not_attempts`
    /// pins the count on each driver.
    pub max_retries: u32,
    /// Record aborted attempts in the history (needed to detect
    /// `ABORTEDREAD`-style anomalies; the paper's checkers assume aborted
    /// transactions are visible in the log).
    pub record_aborted: bool,
}

impl Default for ClientOptions {
    fn default() -> Self {
        ClientOptions {
            max_retries: 3,
            record_aborted: true,
        }
    }
}

impl ClientOptions {
    /// The single retry predicate shared by every driver: retry iff the
    /// abort rolls back cleanly ([`AbortReason::is_retryable`]) and fewer
    /// than [`ClientOptions::max_retries`] retries have been spent.
    /// `retries_so_far` is the number of *completed* attempts beyond the
    /// first — i.e. `attempts_made - 1`.
    pub fn should_retry(&self, retries_so_far: u32, reason: AbortReason) -> bool {
        retries_so_far < self.max_retries && reason.is_retryable()
    }

    /// Whether an aborted attempt should be written to the history: the
    /// caller wants aborted attempts, the attempt observed something
    /// (`ops` nonempty — empty attempts are not mini-transactions), and the
    /// abort is a *known* outcome ([`AbortReason::outcome_known`]; an
    /// ambiguous remote commit must not be recorded as aborted).
    pub(crate) fn should_record_abort(&self, ops: &[Op], reason: AbortReason) -> bool {
        self.record_aborted && !ops.is_empty() && reason.outcome_known()
    }
}

/// Statistics of one workload execution.
#[derive(Clone, Copy, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct ExecutionReport {
    /// Transaction templates that eventually committed.
    pub committed: usize,
    /// Templates that never committed (all attempts aborted).
    pub failed: usize,
    /// Total attempts (committed + every aborted attempt).
    pub attempts: usize,
    /// Aborted attempts.
    pub aborted_attempts: usize,
    /// Wall-clock duration of history generation.
    pub wall_time: Duration,
}

impl ExecutionReport {
    /// Fraction of attempts that aborted — the abort rate of Figure 11.
    pub fn abort_rate(&self) -> f64 {
        if self.attempts == 0 {
            0.0
        } else {
            self.aborted_attempts as f64 / self.attempts as f64
        }
    }
}

/// A transaction record produced by one client thread.
pub(crate) struct TxnRecord {
    pub(crate) session: u32,
    pub(crate) ops: Vec<Op>,
    pub(crate) status: TxnStatus,
    pub(crate) begin: u64,
    pub(crate) end: u64,
}

/// Outcome of issuing one template's operations against an open handle:
/// the recorded ops, and the abort reason if an operation failed (a
/// pessimistic backend can die inside a read or write).
pub(crate) struct AttemptOps {
    pub(crate) ops: Vec<Op>,
    pub(crate) failed: Option<AbortReason>,
}

/// Issues a template's operations, reading values and allocating unique
/// write values. Shared by the batch, live and interleaved drivers.
pub(crate) fn issue_ops(
    handle: &mut dyn DbTxn,
    template_ops: &[ReqOp],
    allocator: &mut ValueAllocator,
) -> AttemptOps {
    let mut ops = Vec::with_capacity(template_ops.len());
    for op in template_ops {
        match *op {
            ReqOp::Read(key) => match handle.read_register(key) {
                Ok(v) => ops.push(Op::Read { key, value: v }),
                Err(reason) => {
                    return AttemptOps {
                        ops,
                        failed: Some(reason),
                    }
                }
            },
            ReqOp::Write(key) => {
                let v = allocator.next();
                match handle.write_register(key, v) {
                    Ok(()) => ops.push(Op::Write { key, value: v }),
                    Err(reason) => {
                        return AttemptOps {
                            ops,
                            failed: Some(reason),
                        }
                    }
                }
            }
        }
    }
    AttemptOps { ops, failed: None }
}

/// Executes `workload` against `db` with one thread per session and returns
/// the collected history together with execution statistics.
#[deprecated(note = "use `ExecutionOptions::threaded().client(*opts).run(db, workload)`")]
pub fn execute_workload(
    db: &dyn DbBackend,
    workload: &Workload,
    opts: &ClientOptions,
) -> (History, ExecutionReport) {
    execute_threaded(db, workload, opts, None)
}

/// The threaded driver proper: one OS thread per session, with an optional
/// live verifier fed in commit order. The unified entry point
/// [`crate::ExecutionOptions::run`] dispatches here for [`crate::Driver::Threaded`].
pub(crate) fn execute_threaded(
    db: &dyn DbBackend,
    workload: &Workload,
    opts: &ClientOptions,
    verifier: Option<&LiveVerifier>,
) -> (History, ExecutionReport) {
    let start = Instant::now();
    let mut session_logs: Vec<(u32, Vec<TxnRecord>, SessionStats)> = Vec::new();

    std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for session in &workload.sessions {
            handles
                .push(scope.spawn(move || {
                    run_session(db, session.session, &session.txns, opts, verifier)
                }));
        }
        for h in handles {
            session_logs.push(h.join().expect("client thread panicked"));
        }
    });

    // Deterministic assembly order: by session id.
    session_logs.sort_by_key(|(s, _, _)| *s);

    let mut report = ExecutionReport {
        wall_time: start.elapsed(),
        ..ExecutionReport::default()
    };
    let mut builder = HistoryBuilder::new().with_init(workload.num_keys);
    for (_, records, stats) in session_logs {
        report.committed += stats.committed;
        report.failed += stats.failed;
        report.attempts += stats.attempts;
        report.aborted_attempts += stats.aborted_attempts;
        for r in records {
            builder.push_timed(r.session, r.ops, r.status, r.begin, r.end);
        }
    }
    (builder.build(), report)
}

/// Executes `workload` against `db` on a **single thread**, interleaving
/// the sessions operation-by-operation according to a seeded schedule. The
/// run is fully deterministic for a given backend, workload and seed, which
/// makes organically produced anomalies (lost updates of the weak MVCC
/// engine, say) reproducible test vectors rather than race lottery wins.
///
/// **Blocking backends beware**: all sessions share one thread, so this
/// driver must only be used with backends whose operations cannot block on
/// another in-flight transaction. The weak MVCC engine and the simulator
/// qualify; the 2PL engine does not (its wait-die "older waits" path would
/// wait forever for a holder parked on the same thread) — drive it with
/// [`execute_workload`] instead.
#[deprecated(note = "use `ExecutionOptions::interleaved(seed).client(*opts).run(db, workload)`")]
pub fn execute_workload_interleaved(
    db: &dyn DbBackend,
    workload: &Workload,
    opts: &ClientOptions,
    schedule_seed: u64,
) -> (History, ExecutionReport) {
    execute_interleaved(db, workload, opts, schedule_seed, None)
}

/// The deterministic single-thread driver proper; dispatched to by
/// [`crate::ExecutionOptions::run`] for [`crate::Driver::Interleaved`]. With a
/// verifier attached, every settled attempt is recorded in schedule order and
/// a latched `stop_on_violation` keeps sessions from *starting* further
/// templates (open attempts still settle, mirroring the threaded driver).
pub(crate) fn execute_interleaved(
    db: &dyn DbBackend,
    workload: &Workload,
    opts: &ClientOptions,
    schedule_seed: u64,
    verifier: Option<&LiveVerifier>,
) -> (History, ExecutionReport) {
    struct OpenTxn<'d> {
        handle: Box<dyn DbTxn + 'd>,
        begin: u64,
        ops: Vec<Op>,
        next_op: usize,
        failed: Option<AbortReason>,
        /// Retries spent on this template so far (0 on the first attempt).
        retries: u32,
    }
    struct SessionState<'d> {
        session: u32,
        templates: &'d [mtc_workload::TxnTemplate],
        next_template: usize,
        open: Option<OpenTxn<'d>>,
        allocator: ValueAllocator,
        records: Vec<TxnRecord>,
        stats: SessionStats,
    }

    let start = Instant::now();
    let mut rng = StdRng::seed_from_u64(schedule_seed);
    let mut sessions: Vec<SessionState> = workload
        .sessions
        .iter()
        .map(|s| SessionState {
            session: s.session,
            templates: &s.txns,
            next_template: 0,
            open: None,
            allocator: ValueAllocator::new(s.session),
            records: Vec::new(),
            stats: SessionStats::default(),
        })
        .collect();

    loop {
        let stopped = verifier.is_some_and(|v| v.should_stop());
        let live: Vec<usize> = sessions
            .iter()
            .enumerate()
            .filter(|(_, s)| s.open.is_some() || (!stopped && s.next_template < s.templates.len()))
            .map(|(i, _)| i)
            .collect();
        if live.is_empty() {
            break;
        }
        let s = &mut sessions[live[rng.gen_range(0..live.len())]];
        match s.open.take() {
            None => {
                // Begin the next template's attempt.
                let handle = db.begin();
                let begin = handle.begin_ts();
                s.stats.attempts += 1;
                s.open = Some(OpenTxn {
                    handle,
                    begin,
                    ops: Vec::new(),
                    next_op: 0,
                    failed: None,
                    retries: 0,
                });
            }
            Some(mut open) => {
                let template = &s.templates[s.next_template];
                if open.failed.is_none() && open.next_op < template.ops.len() {
                    // Issue exactly one operation, then yield to the schedule.
                    let mut one = issue_ops(
                        open.handle.as_mut(),
                        &template.ops[open.next_op..open.next_op + 1],
                        &mut s.allocator,
                    );
                    open.next_op += 1;
                    open.ops.append(&mut one.ops);
                    open.failed = one.failed;
                    s.open = Some(open);
                } else {
                    // All ops issued (or the attempt is doomed): settle it.
                    let result = match open.failed {
                        Some(reason) => {
                            let _ = open.handle.abort();
                            Err(reason)
                        }
                        None => open.handle.commit(),
                    };
                    match result {
                        Ok(info) => {
                            s.stats.committed += 1;
                            if let Some(v) = verifier {
                                v.record_timed(
                                    s.session,
                                    open.ops.clone(),
                                    TxnStatus::Committed,
                                    open.begin,
                                    info.commit_ts,
                                );
                            }
                            s.records.push(TxnRecord {
                                session: s.session,
                                ops: open.ops,
                                status: TxnStatus::Committed,
                                begin: open.begin,
                                end: info.commit_ts,
                            });
                            s.next_template += 1;
                        }
                        Err(reason) => {
                            s.stats.aborted_attempts += 1;
                            if opts.should_record_abort(&open.ops, reason) {
                                let end = db.now();
                                if let Some(v) = verifier {
                                    v.record_timed(
                                        s.session,
                                        open.ops.clone(),
                                        TxnStatus::Aborted,
                                        open.begin,
                                        end,
                                    );
                                }
                                s.records.push(TxnRecord {
                                    session: s.session,
                                    ops: open.ops,
                                    status: TxnStatus::Aborted,
                                    begin: open.begin,
                                    end,
                                });
                            }
                            if opts.should_retry(open.retries, reason) {
                                // Reuse the failed attempt's begin instant so
                                // wait-die backends let the retry keep ageing
                                // (see `DbBackend::begin_retry`).
                                s.open = Some(OpenTxn {
                                    handle: db.begin_retry(open.begin),
                                    begin: 0, // replaced below
                                    ops: Vec::new(),
                                    next_op: 0,
                                    failed: None,
                                    retries: open.retries + 1,
                                });
                                let o = s.open.as_mut().expect("just set");
                                o.begin = o.handle.begin_ts();
                                s.stats.attempts += 1;
                            } else {
                                s.stats.failed += 1;
                                s.next_template += 1;
                            }
                        }
                    }
                }
            }
        }
    }

    let mut report = ExecutionReport {
        wall_time: start.elapsed(),
        ..ExecutionReport::default()
    };
    let mut builder = HistoryBuilder::new().with_init(workload.num_keys);
    for s in sessions {
        report.committed += s.stats.committed;
        report.failed += s.stats.failed;
        report.attempts += s.stats.attempts;
        report.aborted_attempts += s.stats.aborted_attempts;
        for r in s.records {
            builder.push_timed(r.session, r.ops, r.status, r.begin, r.end);
        }
    }
    (builder.build(), report)
}

// ───────────────────────── internal helpers ─────────────────────────────────

#[derive(Default)]
pub(crate) struct SessionStats {
    pub(crate) committed: usize,
    pub(crate) failed: usize,
    pub(crate) attempts: usize,
    pub(crate) aborted_attempts: usize,
}

fn run_session(
    db: &dyn DbBackend,
    session: u32,
    templates: &[mtc_workload::TxnTemplate],
    opts: &ClientOptions,
    verifier: Option<&LiveVerifier>,
) -> (u32, Vec<TxnRecord>, SessionStats) {
    let mut allocator = ValueAllocator::new(session);
    let mut records = Vec::with_capacity(templates.len());
    let mut stats = SessionStats::default();

    for template in templates {
        // A latched stop_on_violation verifier truncates the run: no new
        // templates once the violation is known.
        if verifier.is_some_and(|v| v.should_stop()) {
            break;
        }
        let mut retries = 0u32;
        let mut first_begin = None;
        loop {
            stats.attempts += 1;
            // Retries reuse the first attempt's begin instant so wait-die
            // backends let the transaction keep ageing instead of rebirthing
            // it youngest every attempt (see `DbBackend::begin_retry`).
            let mut handle = match first_begin {
                None => db.begin(),
                Some(ts) => db.begin_retry(ts),
            };
            let begin = handle.begin_ts();
            first_begin.get_or_insert(begin);
            let issued = issue_ops(handle.as_mut(), &template.ops, &mut allocator);
            let result = match issued.failed {
                Some(reason) => {
                    // An operation died inside the backend (e.g. a wait-die
                    // victim): roll back and treat it like a commit abort.
                    let _ = handle.abort();
                    Err(reason)
                }
                None => handle.commit(),
            };
            match result {
                Ok(info) => {
                    stats.committed += 1;
                    if let Some(v) = verifier {
                        v.record_timed(
                            session,
                            issued.ops.clone(),
                            TxnStatus::Committed,
                            begin,
                            info.commit_ts,
                        );
                    }
                    records.push(TxnRecord {
                        session,
                        ops: issued.ops,
                        status: TxnStatus::Committed,
                        begin,
                        end: info.commit_ts,
                    });
                    break;
                }
                Err(reason) => {
                    stats.aborted_attempts += 1;
                    // Empty attempts (the first operation died inside the
                    // backend before reading anything) are not
                    // mini-transactions, and ambiguous remote commits have
                    // no known outcome; either way the attempt is counted
                    // but not recorded.
                    if opts.should_record_abort(&issued.ops, reason) {
                        let end = db.now();
                        if let Some(v) = verifier {
                            v.record_timed(
                                session,
                                issued.ops.clone(),
                                TxnStatus::Aborted,
                                begin,
                                end,
                            );
                        }
                        records.push(TxnRecord {
                            session,
                            ops: issued.ops,
                            status: TxnStatus::Aborted,
                            begin,
                            end,
                        });
                    }
                    if !opts.should_retry(retries, reason) {
                        stats.failed += 1;
                        break;
                    }
                    retries += 1;
                }
            }
        }
    }
    (session, records, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backends::{BackendSpec, WeakLevel};
    use crate::config::{DbConfig, IsolationMode};
    use crate::db::Database;
    use mtc_workload::{generate_mt_workload, Distribution, MtWorkloadSpec};

    fn spec(sessions: u32, txns: u32, keys: u64) -> MtWorkloadSpec {
        MtWorkloadSpec {
            sessions,
            txns_per_session: txns,
            num_keys: keys,
            distribution: Distribution::Uniform,
            read_only_fraction: 0.2,
            two_key_fraction: 0.5,
            seed: 5,
        }
    }

    #[test]
    fn executes_a_small_workload_and_counts_add_up() {
        let db = Database::new(DbConfig::correct(IsolationMode::Serializable, 20));
        let workload = generate_mt_workload(&spec(4, 50, 20));
        let (history, report) = crate::ExecutionOptions::threaded().run(&db, &workload);
        assert_eq!(report.committed + report.failed, workload.txn_count());
        assert_eq!(report.attempts, report.committed + report.aborted_attempts);
        assert_eq!(history.committed_count(), report.committed + 1); // + ⊥T
        assert!(history.has_init());
        assert!(history.has_unique_values());
        assert!(report.abort_rate() <= 1.0);
    }

    #[test]
    fn histories_have_timestamps_on_committed_transactions() {
        let db = Database::new(DbConfig::correct(IsolationMode::Serializable, 10));
        let workload = generate_mt_workload(&spec(2, 20, 10));
        let (history, _) = crate::ExecutionOptions::threaded().run(&db, &workload);
        for t in history.committed() {
            assert!(t.begin.is_some(), "{t:?} lacks a begin timestamp");
            assert!(t.end.is_some(), "{t:?} lacks an end timestamp");
        }
    }

    #[test]
    fn every_fleet_backend_executes_the_same_workload() {
        let s = spec(3, 20, 8);
        let workload = generate_mt_workload(&s);
        for backend_spec in BackendSpec::fleet(s.num_keys) {
            let db = backend_spec.build();
            let (history, report) = crate::ExecutionOptions::threaded().run(&*db, &workload);
            assert!(
                report.committed > 0,
                "{}: nothing committed",
                backend_spec.label()
            );
            assert_eq!(history.committed_count(), report.committed + 1);
            assert!(
                history.has_unique_values(),
                "{}: duplicate write values",
                backend_spec.label()
            );
        }
    }

    #[test]
    fn interleaved_execution_is_deterministic() {
        let s = spec(3, 25, 4);
        let workload = generate_mt_workload(&s);
        let run = |seed: u64| {
            let db = crate::backends::WeakMvccDatabase::new(WeakLevel::ReadCommitted);
            crate::ExecutionOptions::interleaved(seed).run(&db, &workload)
        };
        let (h1, r1) = run(42);
        let (h2, r2) = run(42);
        assert_eq!(r1.committed, r2.committed);
        assert_eq!(h1.len(), h2.len());
        for (a, b) in h1.txns().iter().zip(h2.txns()) {
            assert_eq!(a.ops, b.ops);
            assert_eq!(a.begin, b.begin);
            assert_eq!(a.end, b.end);
        }
        // A different schedule is allowed to produce a different history.
        let (h3, _) = run(43);
        assert_eq!(h1.committed_count(), h3.committed_count());
    }

    /// A backend whose commits always fail with a configurable reason —
    /// the instrument for pinning the retry budget exactly.
    struct AlwaysAbort {
        clock: std::sync::atomic::AtomicU64,
        attempts: std::sync::atomic::AtomicU64,
        reason: AbortReason,
    }

    impl AlwaysAbort {
        fn new(reason: AbortReason) -> Self {
            AlwaysAbort {
                clock: std::sync::atomic::AtomicU64::new(1),
                attempts: std::sync::atomic::AtomicU64::new(0),
                reason,
            }
        }

        fn attempts(&self) -> u64 {
            self.attempts.load(std::sync::atomic::Ordering::SeqCst)
        }
    }

    struct AlwaysAbortTxn<'a> {
        db: &'a AlwaysAbort,
        begin: u64,
    }

    impl DbTxn for AlwaysAbortTxn<'_> {
        fn begin_ts(&self) -> u64 {
            self.begin
        }
        fn read_register(
            &mut self,
            _key: mtc_history::Key,
        ) -> Result<mtc_history::Value, AbortReason> {
            Ok(mtc_history::INIT_VALUE)
        }
        fn write_register(
            &mut self,
            _key: mtc_history::Key,
            _value: mtc_history::Value,
        ) -> Result<(), AbortReason> {
            Ok(())
        }
        fn read_list(
            &mut self,
            _key: mtc_history::Key,
        ) -> Result<Vec<mtc_history::Value>, AbortReason> {
            Ok(Vec::new())
        }
        fn append(
            &mut self,
            _key: mtc_history::Key,
            _element: mtc_history::Value,
        ) -> Result<(), AbortReason> {
            Ok(())
        }
        fn commit(self: Box<Self>) -> Result<crate::txn::CommitInfo, AbortReason> {
            Err(self.db.reason)
        }
        fn abort(self: Box<Self>) -> AbortReason {
            self.db.reason
        }
    }

    impl DbBackend for AlwaysAbort {
        fn begin(&self) -> Box<dyn DbTxn + '_> {
            self.attempts
                .fetch_add(1, std::sync::atomic::Ordering::SeqCst);
            let begin = self.clock.fetch_add(1, std::sync::atomic::Ordering::SeqCst);
            Box::new(AlwaysAbortTxn { db: self, begin })
        }
        fn now(&self) -> u64 {
            self.clock.load(std::sync::atomic::Ordering::SeqCst)
        }
        fn label(&self) -> &'static str {
            "always-abort"
        }
        fn promises(&self, _level: mtc_core::IsolationLevel) -> bool {
            false
        }
    }

    /// Pins the retry budget: `max_retries = N` means exactly `N + 1`
    /// attempts per template, identically on the threaded and the
    /// interleaved driver (the two sites used to encode the bound with
    /// different comparisons — one counting attempts, one counting
    /// retries — and only agreed by accident).
    #[test]
    fn max_retries_counts_retries_not_attempts() {
        let workload = generate_mt_workload(&spec(1, 3, 4)); // 3 templates
        for max_retries in [0u32, 1, 3] {
            let opts = ClientOptions {
                max_retries,
                record_aborted: true,
            };
            let expected = 3 * u64::from(max_retries + 1);

            let db = AlwaysAbort::new(AbortReason::WriteConflict);
            let (_, report) = crate::ExecutionOptions::threaded()
                .client(opts)
                .run(&db, &workload);
            assert_eq!(
                db.attempts(),
                expected,
                "threaded, max_retries={max_retries}"
            );
            assert_eq!(report.attempts as u64, expected);
            assert_eq!(report.failed, 3);
            assert_eq!(report.committed, 0);

            let db = AlwaysAbort::new(AbortReason::WriteConflict);
            let (_, report) = crate::ExecutionOptions::interleaved(9)
                .client(opts)
                .run(&db, &workload);
            assert_eq!(
                db.attempts(),
                expected,
                "interleaved, max_retries={max_retries}"
            );
            assert_eq!(report.attempts as u64, expected);
            assert_eq!(report.failed, 3);
        }
    }

    /// Non-retryable reasons are final after one attempt, and an ambiguous
    /// remote commit (`CommitStatusUnknown`) is additionally kept out of
    /// the collected history even with `record_aborted` on.
    #[test]
    fn final_abort_reasons_stop_after_one_attempt() {
        let workload = generate_mt_workload(&spec(1, 2, 4));
        let opts = ClientOptions {
            max_retries: 5,
            record_aborted: true,
        };
        for reason in [AbortReason::InjectedAbort, AbortReason::CommitStatusUnknown] {
            let db = AlwaysAbort::new(reason);
            let (history, report) = crate::ExecutionOptions::threaded()
                .client(opts)
                .run(&db, &workload);
            assert_eq!(db.attempts(), 2, "{reason:?}: one attempt per template");
            assert_eq!(report.failed, 2);
            if reason == AbortReason::CommitStatusUnknown {
                assert_eq!(
                    history.len(),
                    1, // ⊥T only
                    "ambiguous commits must not be recorded as aborted"
                );
            }
        }
    }

    #[test]
    fn interleaved_counts_add_up_on_the_simulator() {
        let s = spec(4, 30, 6);
        let workload = generate_mt_workload(&s);
        let db = Database::new(DbConfig::correct(IsolationMode::Snapshot, s.num_keys));
        let (history, report) = crate::ExecutionOptions::interleaved(7).run(&db, &workload);
        assert_eq!(report.committed + report.failed, workload.txn_count());
        assert_eq!(report.attempts, report.committed + report.aborted_attempts);
        assert_eq!(history.committed_count(), report.committed + 1);
        assert!(history.has_unique_values());
    }
}
