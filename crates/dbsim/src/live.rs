//! Live verification: checking the simulated database *while* it executes.
//!
//! The batch pipeline collects a complete history and verifies it afterwards
//! (steps ③–④ of Figure 2). With the streaming engine of `mtc-core`, the
//! same check can run concurrently with execution: every session thread
//! reports each finished transaction attempt to a shared [`LiveVerifier`],
//! which feeds an [`IncrementalChecker`] in commit order. The first
//! isolation violation is latched the moment the offending transaction
//! commits — typically long before the workload ends — and can optionally
//! stop the run ([`LiveVerifier::stop_on_violation`]), which is what turns
//! "verify a million transactions, then learn the bug happened at #1302"
//! into "stop at #1302".
//!
//! The verifier consumes transactions in *commit order* (the order the
//! session threads acquire the verifier lock), which preserves each
//! session's order and therefore yields the same verdict as checking the
//! collected history, even though transaction ids differ from the
//! per-session renumbering of the final [`History`](mtc_history::History).

use crate::backend::DbBackend;
use crate::client::ClientOptions;
use mtc_core::{
    CheckError, CheckerSnapshot, GcPolicy, IncrementalChecker, IsolationLevel, ShardTuning,
    ShardedIncrementalChecker, StreamStatus, Verdict, Violation,
};
use mtc_history::{History, Op, SessionId, Transaction, TxnId, TxnStatus};
use mtc_store::MtcStore;
use mtc_workload::Workload;
use parking_lot::Mutex;
use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::{Duration, Instant};

/// Upper bound on the live hand-off batch: the sharded backend buffers at
/// most this many transactions before flushing to the worker pool, keeping
/// the latch delay of `stop_on_violation` bounded even when the autotuner
/// picks large throughput-oriented batches.
pub const LIVE_BATCH_CAP: usize = 64;

/// A thread-safe streaming verifier shared by the client sessions.
pub struct LiveVerifier {
    inner: Mutex<LiveInner>,
    stop_on_violation: bool,
    violated: AtomicBool,
}

/// The verification backend of a live run: the sequential incremental
/// checker, or — when the autotuner reports spare cores — the key-sharded
/// checker behind a small hand-off buffer.
enum LiveChecker {
    Sequential(IncrementalChecker),
    Sharded {
        checker: ShardedIncrementalChecker,
        buf: Vec<Transaction>,
        batch: usize,
    },
}

impl LiveChecker {
    /// Feeds one transaction; the sharded backend may buffer it until a
    /// batch is full.
    fn push(&mut self, txn: Transaction) -> Result<StreamStatus, CheckError> {
        match self {
            LiveChecker::Sequential(c) => c.push(txn),
            LiveChecker::Sharded {
                checker,
                buf,
                batch,
            } => {
                buf.push(txn);
                if buf.len() >= *batch {
                    let full = std::mem::replace(buf, Vec::with_capacity(*batch));
                    checker.push_batch(full)
                } else if checker.is_violated() {
                    Ok(StreamStatus::Violated)
                } else {
                    Ok(StreamStatus::ConsistentSoFar)
                }
            }
        }
    }

    /// Flushes any buffered transactions into the checker.
    fn flush(&mut self) {
        if let LiveChecker::Sharded { checker, buf, .. } = self {
            if !buf.is_empty() {
                let _ = checker.push_batch(std::mem::take(buf));
            }
        }
    }

    fn violation(&self) -> Option<&Violation> {
        match self {
            LiveChecker::Sequential(c) => c.violation(),
            LiveChecker::Sharded { checker, .. } => checker.violation(),
        }
    }

    /// Index of the offending transaction (excluding `⊥T`), once latched.
    fn first_violation_index(&self) -> Option<usize> {
        match self {
            LiveChecker::Sequential(c) => c.first_violation_at(),
            LiveChecker::Sharded { checker, .. } => checker.first_violation_at(),
        }
        .map(|id| id.index())
    }

    /// Transactions consumed by the checker (excluding `⊥T`, excluding any
    /// still-buffered ones).
    fn consumed(&self) -> usize {
        match self {
            LiveChecker::Sequential(c) => c.txn_count(),
            LiveChecker::Sharded { checker, .. } => checker.txn_count(),
        }
        .saturating_sub(1)
    }

    fn finish(mut self) -> Result<Verdict, CheckError> {
        self.flush();
        match self {
            LiveChecker::Sequential(c) => c.finish(),
            LiveChecker::Sharded { checker, .. } => checker.finish(),
        }
    }

    /// Enables settled-prefix GC on the backing checker.
    fn set_gc(&mut self, policy: GcPolicy) {
        match self {
            LiveChecker::Sequential(c) => c.set_gc(policy),
            LiveChecker::Sharded { checker, .. } => checker.set_gc(policy),
        }
    }

    /// Number of live (non-retired) transactions resident in the checker.
    fn live_txn_count(&self) -> usize {
        match self {
            LiveChecker::Sequential(c) => c.live_txn_count(),
            LiveChecker::Sharded { checker, .. } => checker.live_txn_count(),
        }
    }

    /// Flushes any buffered transactions, then snapshots the checker.
    /// Returns the snapshot plus how many recorded transactions it covers
    /// (excluding `⊥T`).
    fn checkpoint(&mut self) -> (u64, CheckerSnapshot) {
        self.flush();
        match self {
            LiveChecker::Sequential(c) => (c.txn_count().saturating_sub(1) as u64, c.checkpoint()),
            LiveChecker::Sharded { checker, .. } => (
                checker.txn_count().saturating_sub(1) as u64,
                checker.checkpoint(),
            ),
        }
    }
}

/// The write-ahead persistence sink of a live verifier: every recorded
/// transaction is appended to an [`MtcStore`] log *before* the checker
/// consumes it, and the checker is snapshotted into a checkpoint file every
/// `checkpoint_every` recorded transactions.
struct StoreSink {
    store: MtcStore,
    checkpoint_every: usize,
    since_checkpoint: usize,
    error: Option<String>,
    /// Per-sink WAL append latency, owned rather than registered — tenants
    /// come and go, and the daemon surfaces this through `TenantStatus`.
    /// Empty unless observability is enabled.
    append_hist: mtc_obs::Histogram,
    /// Failed sink operations (appends/checkpoints after the first error
    /// short-circuit, so in practice 0 or 1).
    errors: u64,
    /// When the newest checkpoint finished, for staleness reporting.
    last_checkpoint: Option<Instant>,
    /// Checkpoints actually written (not cadence-derived).
    checkpoints: u64,
}

impl StoreSink {
    fn new(store: MtcStore, checkpoint_every: usize) -> Self {
        StoreSink {
            store,
            checkpoint_every: checkpoint_every.max(1),
            since_checkpoint: 0,
            error: None,
            append_hist: mtc_obs::Histogram::new(),
            errors: 0,
            last_checkpoint: None,
            checkpoints: 0,
        }
    }

    fn append(&mut self, txn: &Transaction) {
        if self.error.is_some() {
            return;
        }
        let timer = mtc_obs::enabled().then(Instant::now);
        if let Err(e) = self.store.append_txn(txn) {
            self.error = Some(e.to_string());
            self.errors += 1;
            return;
        }
        if let Some(t0) = timer {
            self.append_hist.record(t0.elapsed().as_micros() as u64);
        }
    }

    fn note_recorded(&mut self) -> bool {
        self.since_checkpoint += 1;
        self.error.is_none() && self.since_checkpoint >= self.checkpoint_every
    }

    fn write_checkpoint(&mut self, consumed: u64, snapshot: &CheckerSnapshot) {
        self.since_checkpoint = 0;
        if let Err(e) = self.store.checkpoint(consumed, snapshot) {
            self.error = Some(e.to_string());
            self.errors += 1;
            return;
        }
        self.last_checkpoint = Some(Instant::now());
        self.checkpoints += 1;
    }

    fn stats(&self) -> SinkStats {
        SinkStats {
            wal_append_p99_micros: self.append_hist.snapshot().p99,
            wal_appends: self.append_hist.count(),
            last_checkpoint_age_micros: self
                .last_checkpoint
                .map(|t| t.elapsed().as_micros() as u64),
            checkpoints: self.checkpoints,
            sink_errors: self.errors,
        }
    }
}

/// Observability of a verifier's persistence sink, surfaced per tenant by
/// the service's `TenantStatus` — lets an operator tell a slow tenant from
/// a stalled WAL.
#[derive(Clone, Copy, Debug, Default)]
pub struct SinkStats {
    /// 99th-percentile WAL append latency (0 until observability is
    /// enabled — the histogram only records while the global switch is on).
    pub wal_append_p99_micros: u64,
    /// Appends measured into the p99 (0 while observability is disabled).
    pub wal_appends: u64,
    /// Microseconds since the newest checkpoint finished (`None` before
    /// the first one).
    pub last_checkpoint_age_micros: Option<u64>,
    /// Checkpoints actually written.
    pub checkpoints: u64,
    /// Failed sink operations.
    pub sink_errors: u64,
}

struct LiveInner {
    checker: LiveChecker,
    first_violation: Option<LiveViolation>,
    /// Optional durable write-ahead sink.
    sink: Option<StoreSink>,
    /// Start of the run: set when [`execute_workload_live`] begins (or at
    /// construction, for hand-driven use), so `LiveViolation::elapsed` is
    /// comparable with the run's wall time.
    started: Instant,
}

/// Metadata about the first violation observed during a live run.
#[derive(Clone, Debug)]
pub struct LiveViolation {
    /// How many transactions the verifier had consumed when it latched
    /// (including the offending one, excluding `⊥T`).
    pub at_txn: usize,
    /// Wall-clock time from the start of the run to the latch.
    pub elapsed: Duration,
}

/// Outcome of a live-verified execution.
#[derive(Debug)]
pub struct LiveOutcome {
    /// The final verdict over everything the verifier consumed.
    pub verdict: Result<Verdict, CheckError>,
    /// First-violation metadata, if a violation was latched mid-run.
    pub first_violation: Option<LiveViolation>,
    /// Transactions consumed by the verifier (excluding `⊥T`).
    pub checked_txns: usize,
    /// First error of the persistence sink, if one was attached and failed.
    /// Verification continues past sink errors; recovery guarantees only
    /// cover the prefix persisted before the error.
    pub sink_error: Option<String>,
}

/// Chained-setter construction of a [`LiveVerifier`] — the one way the
/// daemon (and everything else) builds one.
///
/// Replaces the historical constructor sprawl (`new` / `new_tuned` /
/// `with_tuning` / `with_store` / `with_gc` / `from_resumed`, all now
/// deprecated wrappers over this type): tuning, GC policy, durable store and
/// resume source are orthogonal knobs, so they compose as setters instead of
/// multiplying constructors.
///
/// ```
/// use mtc_core::{GcPolicy, IsolationLevel};
/// use mtc_dbsim::LiveVerifier;
///
/// let verifier = LiveVerifier::builder(IsolationLevel::Serializability, 16)
///     .stop_on_violation(true)
///     .gc(GcPolicy { window: 64, every: 16, reader_cap: 0 })
///     .build();
/// assert!(!verifier.is_violated());
/// ```
pub struct LiveVerifierBuilder {
    level: IsolationLevel,
    num_keys: u64,
    stop_on_violation: bool,
    tuning: Option<ShardTuning>,
    gc: Option<GcPolicy>,
    store: Option<(MtcStore, usize)>,
    resume: Option<IncrementalChecker>,
}

impl LiveVerifierBuilder {
    /// When set, sessions executing through [`crate::ExecutionOptions`] with
    /// this verifier attached stop issuing new transactions once a violation
    /// is latched. Defaults to `false`.
    pub fn stop_on_violation(mut self, stop: bool) -> Self {
        self.stop_on_violation = stop;
        self
    }

    /// Shard geometry picked by the autotuner ([`mtc_core::tune`]): on a
    /// single-core box this is the sequential backend; with spare cores the
    /// per-key edge derivation fans out across the sharded checker's worker
    /// pool.
    pub fn autotuned(self) -> Self {
        self.tuning(mtc_core::tune())
    }

    /// Explicit shard geometry. `tuning.shards <= 1` selects the sequential
    /// backend; otherwise transactions are buffered (at most `tuning.batch`,
    /// capped at [`LIVE_BATCH_CAP`] to bound the `stop_on_violation` latch
    /// delay) and fed to a [`ShardedIncrementalChecker`] batch by batch.
    /// Verdicts are identical to the sequential backend's in every case.
    /// Ignored when a [`LiveVerifierBuilder::resume_from`] source is set (a
    /// recovered snapshot is sequential checker state).
    pub fn tuning(mut self, tuning: ShardTuning) -> Self {
        self.tuning = Some(tuning);
        self
    }

    /// Enables settled-prefix garbage collection on the backing checker:
    /// resident state stays proportional to the GC window instead of the
    /// run length (see [`GcPolicy`] for the staleness-window contract).
    pub fn gc(mut self, policy: GcPolicy) -> Self {
        self.gc = Some(policy);
        self
    }

    /// Attaches a durable write-ahead sink: every recorded transaction is
    /// appended to `store` *before* the checker consumes it, and a
    /// checkpoint (a complete [`CheckerSnapshot`]) is written every
    /// `checkpoint_every` recorded transactions. After a crash,
    /// [`mtc_store::recover`] + [`IncrementalChecker::resume`] + replay of
    /// the logged tail reproduce the uninterrupted verdict.
    pub fn store(mut self, store: MtcStore, checkpoint_every: usize) -> Self {
        self.store = Some((store, checkpoint_every));
        self
    }

    /// Resumes from an already-populated checker — the recovery path:
    /// recover a store, replay the logged tail into
    /// [`IncrementalChecker::resume`]'s result, then hand it here to keep
    /// verifying live. The latch state is inherited from the checker; the
    /// builder's `level`/`num_keys` and any [`LiveVerifierBuilder::tuning`]
    /// are ignored (the snapshot already fixes them).
    pub fn resume_from(mut self, checker: IncrementalChecker) -> Self {
        self.resume = Some(checker);
        self
    }

    /// Builds the verifier.
    pub fn build(self) -> LiveVerifier {
        let v = match self.resume {
            Some(checker) => LiveVerifier::resume_checker(checker, self.stop_on_violation),
            None => {
                let checker = match self.tuning {
                    Some(tuning) if tuning.shards > 1 => {
                        let batch = tuning.batch.clamp(1, LIVE_BATCH_CAP);
                        LiveChecker::Sharded {
                            checker: ShardedIncrementalChecker::new(self.level, tuning.shards)
                                .with_init_keys(0..self.num_keys),
                            buf: Vec::with_capacity(batch),
                            batch,
                        }
                    }
                    _ => LiveChecker::Sequential(
                        IncrementalChecker::new(self.level).with_init_keys(0..self.num_keys),
                    ),
                };
                LiveVerifier::from_checker(checker, self.stop_on_violation)
            }
        };
        {
            let mut inner = v.inner.lock();
            if let Some(policy) = self.gc {
                inner.checker.set_gc(policy);
            }
            if let Some((store, checkpoint_every)) = self.store {
                inner.sink = Some(StoreSink::new(store, checkpoint_every));
            }
        }
        v
    }
}

/// One finished transaction attempt, as fed to a [`LiveVerifier`] — the
/// serializable unit the verification service ingests over the wire.
/// `begin`/`end` carry the backend's logical clock when known; without them
/// the SSER mode degenerates to SER (see [`LiveVerifier::record_timed`]).
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct IngestEvent {
    /// Session (client thread) the attempt ran on.
    pub session: u32,
    /// The attempt's operations in issue order.
    pub ops: Vec<Op>,
    /// Whether the attempt committed or aborted.
    pub status: TxnStatus,
    /// Begin timestamp on the backend's logical clock, if known.
    pub begin: Option<u64>,
    /// Commit-acknowledgement timestamp, if known.
    pub end: Option<u64>,
}

impl IngestEvent {
    /// An event with both instants known.
    pub fn timed(session: u32, ops: Vec<Op>, status: TxnStatus, begin: u64, end: u64) -> Self {
        IngestEvent {
            session,
            ops,
            status,
            begin: Some(begin),
            end: Some(end),
        }
    }
}

impl LiveVerifier {
    /// Starts building a live verifier for `level` over a database
    /// pre-initialized with `num_keys` register keys. See
    /// [`LiveVerifierBuilder`].
    pub fn builder(level: IsolationLevel, num_keys: u64) -> LiveVerifierBuilder {
        LiveVerifierBuilder {
            level,
            num_keys,
            stop_on_violation: false,
            tuning: None,
            gc: None,
            store: None,
            resume: None,
        }
    }

    /// A live verifier backed by the sequential incremental checker.
    #[deprecated(note = "use `LiveVerifier::builder(level, num_keys).stop_on_violation(..)`")]
    pub fn new(level: IsolationLevel, num_keys: u64, stop_on_violation: bool) -> Self {
        LiveVerifier::builder(level, num_keys)
            .stop_on_violation(stop_on_violation)
            .build()
    }

    /// A live verifier with the shard geometry picked by the autotuner.
    #[deprecated(note = "use `LiveVerifier::builder(level, num_keys).autotuned()`")]
    pub fn new_tuned(level: IsolationLevel, num_keys: u64, stop_on_violation: bool) -> Self {
        LiveVerifier::builder(level, num_keys)
            .stop_on_violation(stop_on_violation)
            .autotuned()
            .build()
    }

    /// A live verifier with an explicit shard geometry.
    #[deprecated(note = "use `LiveVerifier::builder(level, num_keys).tuning(tuning)`")]
    pub fn with_tuning(
        level: IsolationLevel,
        num_keys: u64,
        stop_on_violation: bool,
        tuning: ShardTuning,
    ) -> Self {
        LiveVerifier::builder(level, num_keys)
            .stop_on_violation(stop_on_violation)
            .tuning(tuning)
            .build()
    }

    fn from_checker(checker: LiveChecker, stop_on_violation: bool) -> Self {
        LiveVerifier {
            inner: Mutex::new(LiveInner {
                checker,
                first_violation: None,
                sink: None,
                started: Instant::now(),
            }),
            stop_on_violation,
            violated: AtomicBool::new(false),
        }
    }

    /// Wraps an already-populated checker, inheriting its latch state — the
    /// implementation behind [`LiveVerifierBuilder::resume_from`].
    fn resume_checker(checker: IncrementalChecker, stop_on_violation: bool) -> Self {
        let violated = checker.is_violated();
        let v = LiveVerifier::from_checker(LiveChecker::Sequential(checker), stop_on_violation);
        if violated {
            let mut inner = v.inner.lock();
            v.note_latch(&mut inner);
        }
        v
    }

    /// Wraps an already-populated checker — the resume path.
    #[deprecated(note = "use `LiveVerifier::builder(..).resume_from(checker)`")]
    pub fn from_resumed(checker: IncrementalChecker, stop_on_violation: bool) -> Self {
        LiveVerifier::resume_checker(checker, stop_on_violation)
    }

    /// Attaches a durable write-ahead sink.
    #[deprecated(note = "use `LiveVerifier::builder(..).store(store, checkpoint_every)`")]
    pub fn with_store(self, store: MtcStore, checkpoint_every: usize) -> Self {
        self.inner.lock().sink = Some(StoreSink::new(store, checkpoint_every));
        self
    }

    /// Enables settled-prefix garbage collection on the backing checker.
    #[deprecated(note = "use `LiveVerifier::builder(..).gc(policy)`")]
    pub fn with_gc(self, policy: GcPolicy) -> Self {
        self.inner.lock().checker.set_gc(policy);
        self
    }

    /// Number of transactions currently resident in the checker — bounded
    /// (once steady state is reached) when a GC policy is set.
    pub fn live_txn_count(&self) -> usize {
        self.inner.lock().checker.live_txn_count()
    }

    /// Transactions consumed by the checker so far (excluding `⊥T` and any
    /// transactions still buffered by the sharded backend) — the "checked"
    /// half of a tenant's ingest lag.
    pub fn consumed(&self) -> usize {
        self.inner.lock().checker.consumed()
    }

    /// The latched first-violation metadata (stream index plus wall-clock
    /// detection latency), once a violation has latched via the record
    /// path. Unlike [`LiveVerifier::first_violation_at`] this does not
    /// consult the checker directly, so a violation still sitting in the
    /// sharded hand-off buffer is invisible until the next record or
    /// [`LiveVerifier::violation`] call flushes it.
    pub fn first_violation(&self) -> Option<LiveViolation> {
        self.inner.lock().first_violation.clone()
    }

    /// Index of the first violating transaction (excluding `⊥T`), once a
    /// violation has latched.
    pub fn first_violation_at(&self) -> Option<usize> {
        let inner = self.inner.lock();
        inner
            .first_violation
            .as_ref()
            .map(|v| v.at_txn)
            .or_else(|| inner.checker.first_violation_index())
    }

    /// Restarts the time-to-first-violation clock. Called by
    /// [`execute_workload_live`] when the run actually begins, so that
    /// verifier construction and other setup do not count towards
    /// [`LiveViolation::elapsed`].
    pub fn mark_started(&self) {
        self.inner.lock().started = Instant::now();
    }

    /// True iff a violation has been latched.
    pub fn is_violated(&self) -> bool {
        self.violated.load(Ordering::Relaxed)
    }

    /// True iff sessions should stop issuing transactions.
    pub fn should_stop(&self) -> bool {
        self.stop_on_violation && self.is_violated()
    }

    /// Feeds one finished transaction attempt. Called by the session threads
    /// in commit order; also usable directly when driving [`Database`] by
    /// hand (see `examples/streaming_check.rs`). Without begin/commit
    /// instants the SSER mode degenerates to SER — prefer
    /// [`LiveVerifier::record_timed`] when the instants are known.
    pub fn record(&self, session: u32, ops: Vec<Op>, status: TxnStatus) {
        self.record_inner(session, ops, status, None)
    }

    /// Feeds one finished transaction attempt together with its begin and
    /// commit-acknowledgement instants (the simulated store's logical
    /// clock). In SSER mode the instants feed the online time-chain, so
    /// real-time-order violations — including skewed commit timestamps —
    /// latch the moment the offending commit is recorded.
    pub fn record_timed(
        &self,
        session: u32,
        ops: Vec<Op>,
        status: TxnStatus,
        begin: u64,
        end: u64,
    ) {
        self.record_inner(session, ops, status, Some((begin, end)))
    }

    /// Feeds one wire-shaped [`IngestEvent`] — [`LiveVerifier::record_timed`]
    /// when both instants are present, [`LiveVerifier::record`] otherwise.
    /// This is the entry point the verification service's per-tenant drain
    /// uses.
    pub fn record_event(&self, event: IngestEvent) {
        let times = match (event.begin, event.end) {
            (Some(begin), Some(end)) => Some((begin, end)),
            _ => None,
        };
        self.record_inner(event.session, event.ops, event.status, times)
    }

    fn record_inner(
        &self,
        session: u32,
        ops: Vec<Op>,
        status: TxnStatus,
        times: Option<(u64, u64)>,
    ) {
        let mut inner = self.inner.lock();
        if inner.checker.violation().is_some() {
            return;
        }
        let mut txn = Transaction {
            id: TxnId(0), // renumbered by the checker
            session: SessionId(session),
            ops,
            status,
            begin: None,
            end: None,
        };
        if let Some((begin, end)) = times {
            txn.begin = Some(begin);
            txn.end = Some(end);
        }
        let guts = &mut *inner;
        if let Some(sink) = guts.sink.as_mut() {
            // Write-ahead: the log sees the transaction before the checker.
            sink.append(&txn);
        }
        let result = guts.checker.push(txn);
        if result.is_err() {
            // Domain errors latch inside the checker; surfaced by finish().
            self.violated.store(true, Ordering::Relaxed);
        }
        if let Some(sink) = guts.sink.as_mut() {
            if sink.note_recorded() {
                let (consumed, snapshot) = guts.checker.checkpoint();
                sink.write_checkpoint(consumed, &snapshot);
            }
        }
        self.note_latch(&mut inner);
    }

    /// Records latch metadata (the `violated` flag feeding `should_stop`,
    /// plus the first-violation snapshot) whenever the backing checker has a
    /// violation. Called after every push *and* after every internal flush —
    /// a violating transaction may only latch when the sharded backend's
    /// buffer drains, whichever code path drains it.
    fn note_latch(&self, inner: &mut LiveInner) {
        if inner.checker.violation().is_some() {
            if inner.first_violation.is_none() {
                inner.first_violation = Some(LiveViolation {
                    at_txn: inner
                        .checker
                        .first_violation_index()
                        .unwrap_or_else(|| inner.checker.consumed()),
                    elapsed: inner.started.elapsed(),
                });
            }
            self.violated.store(true, Ordering::Relaxed);
        }
    }

    /// Observability of the attached persistence sink (`None` without one):
    /// WAL append p99, checkpoint staleness, error count.
    pub fn sink_stats(&self) -> Option<SinkStats> {
        self.inner.lock().sink.as_ref().map(StoreSink::stats)
    }

    /// A snapshot of the currently latched violation, if any. Flushes the
    /// sharded backend's hand-off buffer first, so the answer reflects
    /// everything recorded so far (and latches `stop_on_violation` if the
    /// flush surfaced a violation).
    pub fn violation(&self) -> Option<Violation> {
        let mut inner = self.inner.lock();
        inner.checker.flush();
        self.note_latch(&mut inner);
        inner.checker.violation().cloned()
    }

    /// Ends the stream and returns the final outcome, syncing the
    /// persistence sink (if any) so the log survives the process.
    pub fn finish(self) -> LiveOutcome {
        let mut inner = self.inner.into_inner();
        inner.checker.flush();
        let sink_error = inner.sink.as_mut().and_then(|sink| {
            if sink.error.is_none() {
                if let Err(e) = sink.store.sync() {
                    sink.error = Some(e.to_string());
                }
            }
            sink.error.clone()
        });
        let checked = inner.checker.consumed();
        let first_violation = inner.first_violation.or_else(|| {
            // A violation that only surfaced on the final flush of the
            // sharded backend still gets its latch metadata.
            inner
                .checker
                .first_violation_index()
                .map(|at_txn| LiveViolation {
                    at_txn,
                    elapsed: inner.started.elapsed(),
                })
        });
        LiveOutcome {
            verdict: inner.checker.finish(),
            first_violation,
            checked_txns: checked,
            sink_error,
        }
    }
}

/// Executes `workload` against `db` — any [`DbBackend`] — with one thread
/// per session, like the threaded driver, while feeding every finished
/// attempt to `verifier`. Returns the collected history and execution
/// statistics; call [`LiveVerifier::finish`] afterwards for the
/// verification outcome.
#[deprecated(
    note = "use `ExecutionOptions::threaded().client(*opts).verifier(verifier).run(db, \
                     workload)`"
)]
pub fn execute_workload_live(
    db: &dyn DbBackend,
    workload: &Workload,
    opts: &ClientOptions,
    verifier: &LiveVerifier,
) -> (History, ExecutionReportLive) {
    let (history, report) = crate::ExecutionOptions::threaded()
        .client(*opts)
        .verifier(verifier)
        .run(db, workload);
    (history, report.into())
}

/// Statistics of one live-verified execution. (A separate type from
/// [`crate::ExecutionReport`] because a live run may stop early, making the
/// "failed templates" notion meaningless.)
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ExecutionReportLive {
    /// Committed transactions.
    pub committed: usize,
    /// Aborted attempts.
    pub aborted_attempts: usize,
    /// Total attempts.
    pub attempts: usize,
    /// Wall-clock duration of the (possibly truncated) run.
    pub wall_time: Duration,
}

impl ExecutionReportLive {
    /// Fraction of attempts that aborted.
    pub fn abort_rate(&self) -> f64 {
        if self.attempts == 0 {
            0.0
        } else {
            self.aborted_attempts as f64 / self.attempts as f64
        }
    }
}

impl From<crate::ExecutionReport> for ExecutionReportLive {
    /// Drops the "failed templates" count, which a truncated live run
    /// cannot interpret.
    fn from(r: crate::ExecutionReport) -> Self {
        ExecutionReportLive {
            committed: r.committed,
            aborted_attempts: r.aborted_attempts,
            attempts: r.attempts,
            wall_time: r.wall_time,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{DbConfig, IsolationMode};
    use crate::db::Database;
    use crate::faults::{FaultKind, FaultSpec};
    use mtc_workload::{generate_mt_workload, Distribution, MtWorkloadSpec};

    fn spec(seed: u64, keys: u64, txns: u32) -> MtWorkloadSpec {
        MtWorkloadSpec {
            sessions: 4,
            txns_per_session: txns,
            num_keys: keys,
            distribution: Distribution::Uniform,
            read_only_fraction: 0.2,
            two_key_fraction: 0.5,
            seed,
        }
    }

    /// The unified threaded-driver call the old `execute_workload_live`
    /// free function used to be.
    fn run_live(
        db: &dyn DbBackend,
        workload: &Workload,
        opts: &ClientOptions,
        verifier: &LiveVerifier,
    ) -> (History, crate::ExecutionReport) {
        crate::ExecutionOptions::threaded()
            .client(*opts)
            .verifier(verifier)
            .run(db, workload)
    }

    #[test]
    fn clean_database_passes_live_verification() {
        let s = spec(3, 16, 50);
        let workload = generate_mt_workload(&s);
        let db = Database::new(DbConfig::correct(IsolationMode::Serializable, s.num_keys));
        let verifier = LiveVerifier::builder(IsolationLevel::Serializability, s.num_keys).build();
        let (history, report) = run_live(&db, &workload, &ClientOptions::default(), &verifier);
        assert!(report.committed > 0);
        let outcome = verifier.finish();
        assert!(outcome.verdict.unwrap().is_satisfied());
        assert!(outcome.first_violation.is_none());
        assert_eq!(
            outcome.checked_txns,
            history.len() - 1,
            "verifier must have consumed every recorded transaction"
        );
    }

    #[test]
    fn clean_serializable_database_passes_live_sser_verification() {
        // A correct serializable store with honest timestamps is strictly
        // serializable: the SSER live verifier must stay quiet.
        let s = spec(5, 8, 60);
        let workload = generate_mt_workload(&s);
        let db = Database::new(DbConfig::correct(IsolationMode::Serializable, s.num_keys));
        let verifier =
            LiveVerifier::builder(IsolationLevel::StrictSerializability, s.num_keys).build();
        let (history, _) = run_live(&db, &workload, &ClientOptions::default(), &verifier);
        let outcome = verifier.finish();
        assert!(
            outcome.verdict.unwrap().is_satisfied(),
            "clean run must pass SSER"
        );
        assert!(outcome.first_violation.is_none());
        assert_eq!(outcome.checked_txns, history.len() - 1);
    }

    #[test]
    fn skewed_commit_timestamps_are_caught_by_live_sser() {
        // Clock-skewed commit acknowledgements violate only the real-time
        // order: live SER stays quiet while live SSER latches mid-run.
        let s = spec(9, 4, 150);
        let workload = generate_mt_workload(&s);
        let make_db = || {
            Database::new(
                DbConfig::correct(IsolationMode::Serializable, s.num_keys)
                    .with_latency(Duration::from_micros(200), Duration::from_micros(100))
                    .with_faults(vec![FaultSpec::new(FaultKind::CommitTimestampSkew, 0.4)], 9),
            )
        };

        let ser_verifier =
            LiveVerifier::builder(IsolationLevel::Serializability, s.num_keys).build();
        run_live(
            &make_db(),
            &workload,
            &ClientOptions::default(),
            &ser_verifier,
        );
        assert!(
            ser_verifier.finish().verdict.unwrap().is_satisfied(),
            "commit-timestamp skew must be invisible to SER"
        );

        let sser_verifier =
            LiveVerifier::builder(IsolationLevel::StrictSerializability, s.num_keys)
                .stop_on_violation(true)
                .build();
        run_live(
            &make_db(),
            &workload,
            &ClientOptions::default(),
            &sser_verifier,
        );
        let outcome = sser_verifier.finish();
        assert!(
            outcome.verdict.unwrap().is_violated(),
            "the skewed commit must violate SSER"
        );
        let first = outcome.first_violation.expect("must latch mid-run");
        assert!(first.at_txn <= outcome.checked_txns);
    }

    #[test]
    fn sharded_live_verifier_passes_clean_runs_and_catches_faults() {
        use mtc_core::ShardTuning;
        // Force the sharded backend regardless of this machine's core count.
        let tuning = ShardTuning::clamped(3, 16);

        let s = spec(3, 16, 50);
        let workload = generate_mt_workload(&s);
        let db = Database::new(DbConfig::correct(IsolationMode::Serializable, s.num_keys));
        let verifier = LiveVerifier::builder(IsolationLevel::Serializability, s.num_keys)
            .tuning(tuning)
            .build();
        let (history, _) = run_live(&db, &workload, &ClientOptions::default(), &verifier);
        let outcome = verifier.finish();
        assert!(outcome.verdict.unwrap().is_satisfied());
        assert!(outcome.first_violation.is_none());
        assert_eq!(
            outcome.checked_txns,
            history.len() - 1,
            "the final flush must consume the whole hand-off buffer"
        );

        let s = spec(7, 4, 150);
        let workload = generate_mt_workload(&s);
        let config = DbConfig::correct(IsolationMode::Snapshot, s.num_keys)
            .with_latency(Duration::from_micros(200), Duration::from_micros(100))
            .with_faults(vec![FaultSpec::new(FaultKind::SkipWriteValidation, 0.6)], 7);
        let db = Database::new(config);
        let verifier = LiveVerifier::builder(IsolationLevel::SnapshotIsolation, s.num_keys)
            .stop_on_violation(true)
            .tuning(tuning)
            .build();
        let (_, _) = run_live(&db, &workload, &ClientOptions::default(), &verifier);
        let outcome = verifier.finish();
        assert!(
            outcome.verdict.unwrap().is_violated(),
            "the injected lost update must be caught by the sharded backend"
        );
        let first = outcome.first_violation.expect("latch metadata must be set");
        assert!(first.at_txn <= outcome.checked_txns);
    }

    #[test]
    fn tuned_live_verifier_matches_this_machines_geometry() {
        // Whatever the autotuner picks here, a clean run must verify clean.
        let s = spec(11, 8, 40);
        let workload = generate_mt_workload(&s);
        let db = Database::new(DbConfig::correct(IsolationMode::Serializable, s.num_keys));
        let verifier = LiveVerifier::builder(IsolationLevel::Serializability, s.num_keys)
            .autotuned()
            .build();
        let (history, _) = run_live(&db, &workload, &ClientOptions::default(), &verifier);
        let outcome = verifier.finish();
        assert!(outcome.verdict.unwrap().is_satisfied());
        assert_eq!(outcome.checked_txns, history.len() - 1);
    }

    fn store_dir(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("mtc_live_{tag}_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn persisted_run_recovers_and_replays_to_the_same_verdict() {
        use mtc_store::StreamMeta;
        let dir = store_dir("wal");
        let s = spec(21, 8, 40);
        let workload = generate_mt_workload(&s);
        let db = Database::new(DbConfig::correct(IsolationMode::Serializable, s.num_keys));
        let level = IsolationLevel::Serializability;
        let store = MtcStore::create(
            &dir,
            &StreamMeta {
                level,
                num_keys: s.num_keys,
            },
        )
        .unwrap();
        let verifier = LiveVerifier::builder(level, s.num_keys)
            .store(store, 25)
            .build();
        // Skip aborted-attempt records: how many conflict aborts occur (and
        // get logged) depends on thread scheduling, and this test asserts
        // the log's record count exactly.
        let opts = ClientOptions {
            record_aborted: false,
            ..ClientOptions::default()
        };
        let (_, report) = run_live(&db, &workload, &opts, &verifier);
        // "Crash": drop the verifier without finish(). The log was written
        // ahead of the checker; the sink synced at each checkpoint.
        drop(verifier);

        let recovery = mtc_store::recover(&dir).unwrap();
        assert_eq!(recovery.txns.len(), report.committed);
        assert!(
            recovery.snapshot.is_some(),
            "the checkpoint cadence must have fired"
        );
        assert!(recovery.resume_from > 0);
        let mut resumed = IncrementalChecker::resume(recovery.snapshot.clone().unwrap());
        for t in recovery.tail() {
            let _ = resumed.push(t.clone());
        }
        let resumed_verdict = resumed.finish().unwrap();
        // Reference: replay the whole log from scratch.
        let clean = mtc_core::check_streaming(level, &recovery.to_history()).unwrap();
        assert_eq!(resumed_verdict, clean);
        assert!(clean.is_satisfied());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn persisted_faulty_run_resumes_to_the_same_violation() {
        use mtc_store::StreamMeta;
        let dir = store_dir("wal_fault");
        let s = spec(7, 4, 150);
        let workload = generate_mt_workload(&s);
        let config = DbConfig::correct(IsolationMode::Snapshot, s.num_keys)
            .with_latency(Duration::from_micros(200), Duration::from_micros(100))
            .with_faults(vec![FaultSpec::new(FaultKind::SkipWriteValidation, 0.6)], 7);
        let db = Database::new(config);
        let level = IsolationLevel::SnapshotIsolation;
        let store = MtcStore::create(
            &dir,
            &StreamMeta {
                level,
                num_keys: s.num_keys,
            },
        )
        .unwrap();
        let verifier = LiveVerifier::builder(level, s.num_keys)
            .stop_on_violation(true)
            .store(store, 20)
            .build();
        let (_, _) = run_live(&db, &workload, &ClientOptions::default(), &verifier);
        let outcome = verifier.finish();
        assert!(outcome.sink_error.is_none(), "{:?}", outcome.sink_error);
        let live_verdict = outcome.verdict.unwrap();
        assert!(live_verdict.is_violated());

        let recovery = mtc_store::recover(&dir).unwrap();
        let mut resumed = match recovery.snapshot.clone() {
            Some(snap) => IncrementalChecker::resume(snap),
            None => IncrementalChecker::new(level).with_init_keys(0..s.num_keys),
        };
        for t in recovery.tail() {
            let _ = resumed.push(t.clone());
        }
        assert_eq!(resumed.finish().unwrap(), live_verdict);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn gc_bounded_live_verifier_stays_quiet_on_clean_streams() {
        // Drive the verifier by hand (deterministic record order — the GC
        // staleness window assumes reads lag by a bounded number of
        // *records*, which OS scheduling does not bound for free-running
        // session threads; sizing the window for a deployment is the
        // operator's knob).
        let keys = 16u64;
        let verifier = LiveVerifier::builder(IsolationLevel::Serializability, keys)
            .gc(GcPolicy {
                window: 64,
                every: 16,
                reader_cap: 0,
            })
            .build();
        let mut last = vec![0u64; keys as usize];
        let n = 800u64;
        for i in 0..n {
            let k = (i * 5) % keys;
            let v = 1_000 + i;
            verifier.record_timed(
                (i % 4) as u32,
                vec![Op::read(k, last[k as usize]), Op::write(k, v)],
                TxnStatus::Committed,
                10 * i + 1,
                10 * i + 6,
            );
            last[k as usize] = v;
        }
        assert!(
            verifier.live_txn_count() < n as usize / 2,
            "the GC must have retired most of the stream ({} resident)",
            verifier.live_txn_count()
        );
        let outcome = verifier.finish();
        assert!(outcome.verdict.unwrap().is_satisfied());
        assert_eq!(outcome.checked_txns, n as usize);
    }

    #[test]
    fn faulty_database_is_caught_while_running() {
        let s = spec(7, 4, 150);
        let workload = generate_mt_workload(&s);
        let config = DbConfig::correct(IsolationMode::Snapshot, s.num_keys)
            .with_latency(Duration::from_micros(200), Duration::from_micros(100))
            .with_faults(vec![FaultSpec::new(FaultKind::SkipWriteValidation, 0.6)], 7);
        let db = Database::new(config);
        let verifier = LiveVerifier::builder(IsolationLevel::SnapshotIsolation, s.num_keys)
            .stop_on_violation(true)
            .build();
        let (_, _) = run_live(&db, &workload, &ClientOptions::default(), &verifier);
        let outcome = verifier.finish();
        let total = (s.sessions * s.txns_per_session) as usize;
        assert!(
            outcome.verdict.unwrap().is_violated(),
            "the injected lost update must be caught"
        );
        let first = outcome.first_violation.expect("must latch mid-run");
        assert!(
            first.at_txn <= outcome.checked_txns && outcome.checked_txns <= total,
            "stop-on-violation must truncate the run: latched at {} of {}",
            first.at_txn,
            outcome.checked_txns
        );
    }
}
