//! The unified execution API: one entry point for every client driver.
//!
//! Historically each driver was its own free function — `execute_workload`
//! (threaded), `execute_workload_interleaved` (deterministic single-thread),
//! `execute_workload_async` (executor-multiplexed) and
//! `execute_workload_live` (threaded + streaming verification) — and callers
//! picked semantics by picking a symbol. The four signatures drifted apart
//! (the live driver took a verifier, the async one its own options struct,
//! the interleaved one a bare seed) even though the retry/recording policy
//! underneath is the single [`ClientOptions`] contract.
//!
//! [`ExecutionOptions`] collapses that surface: choose a [`Driver`], set the
//! client policy, optionally attach a [`LiveVerifier`] — on *any* driver —
//! and call [`ExecutionOptions::run`]. The old free functions survive as
//! thin deprecated wrappers.
//!
//! ```
//! use mtc_dbsim::{Database, DbConfig, ExecutionOptions, IsolationMode};
//! use mtc_workload::{generate_mt_workload, Distribution, MtWorkloadSpec};
//!
//! let spec = MtWorkloadSpec {
//!     sessions: 2,
//!     txns_per_session: 10,
//!     num_keys: 8,
//!     distribution: Distribution::Uniform,
//!     read_only_fraction: 0.2,
//!     two_key_fraction: 0.5,
//!     seed: 1,
//! };
//! let workload = generate_mt_workload(&spec);
//! let db = Database::new(DbConfig::correct(IsolationMode::Serializable, spec.num_keys));
//! let (history, report) = ExecutionOptions::threaded().run(&db, &workload);
//! assert_eq!(report.committed + report.failed, workload.txn_count());
//! assert!(history.has_init());
//! ```
//!
//! Driver caveats carry over unchanged and are enforced by nothing but the
//! operator's judgement, exactly as before: [`Driver::Interleaved`] must only
//! drive non-blocking backends, and [`Driver::Async`] needs
//! `workers >= sessions` on a blocking backend (see
//! [`crate::BackendSpec::blocking`]).

use crate::backend::DbBackend;
use crate::client::{execute_interleaved, execute_threaded, ClientOptions, ExecutionReport};
use crate::live::LiveVerifier;
use mtc_history::History;
use mtc_workload::Workload;

/// Which client driver carries the sessions.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum Driver {
    /// One OS thread per session — the default. Works with every backend,
    /// including blocking ones (2PL lock waits park only their own thread).
    #[default]
    Threaded,
    /// All sessions on one thread, interleaved operation-by-operation from
    /// a seeded schedule: fully deterministic, the conformance suite's tool
    /// for reproducible anomalies. **Non-blocking backends only** — a 2PL
    /// "older waits" path would wait forever for a holder parked on the
    /// same thread.
    Interleaved {
        /// Seed of the interleaving schedule.
        schedule_seed: u64,
    },
    /// One future per session on the scoped `futures_lite` executor:
    /// thousands of sessions overlapping on a few worker threads, the shape
    /// remote backends want. A blocking backend needs
    /// `workers >= sessions`.
    Async {
        /// Executor worker threads carrying all session tasks (clamped to
        /// at least one).
        workers: usize,
    },
}

/// Options of the unified driver entry point — see the [module docs](self)
/// for the full tour.
///
/// The lifetime `'v` is the borrow of the attached verifier; options without
/// one are `ExecutionOptions<'static>`.
#[derive(Clone, Copy, Default)]
pub struct ExecutionOptions<'v> {
    /// The driver carrying the sessions.
    pub driver: Driver,
    /// Retry/recording policy, shared by every driver.
    pub client: ClientOptions,
    /// Optional streaming verifier fed every finished attempt in commit
    /// order (the order attempts settle under the chosen driver). With
    /// [`LiveVerifier`] built `stop_on_violation`, a latched violation stops
    /// sessions from starting further templates on any driver.
    pub verifier: Option<&'v LiveVerifier>,
}

impl std::fmt::Debug for ExecutionOptions<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ExecutionOptions")
            .field("driver", &self.driver)
            .field("client", &self.client)
            .field("verifier", &self.verifier.is_some())
            .finish()
    }
}

impl ExecutionOptions<'static> {
    /// Defaults: [`Driver::Threaded`], default [`ClientOptions`], no
    /// verifier.
    pub fn new() -> Self {
        ExecutionOptions::default()
    }

    /// The threaded driver (one OS thread per session).
    pub fn threaded() -> Self {
        ExecutionOptions::new()
    }

    /// The deterministic interleaved driver with `schedule_seed`.
    pub fn interleaved(schedule_seed: u64) -> Self {
        ExecutionOptions::new().driver(Driver::Interleaved { schedule_seed })
    }

    /// The async driver with `workers` executor threads.
    pub fn async_workers(workers: usize) -> Self {
        ExecutionOptions::new().driver(Driver::Async { workers })
    }
}

impl<'v> ExecutionOptions<'v> {
    /// Replaces the driver.
    pub fn driver(mut self, driver: Driver) -> Self {
        self.driver = driver;
        self
    }

    /// Replaces the whole client policy.
    pub fn client(mut self, client: ClientOptions) -> Self {
        self.client = client;
        self
    }

    /// Sets [`ClientOptions::max_retries`].
    pub fn max_retries(mut self, max_retries: u32) -> Self {
        self.client.max_retries = max_retries;
        self
    }

    /// Sets [`ClientOptions::record_aborted`].
    pub fn record_aborted(mut self, record_aborted: bool) -> Self {
        self.client.record_aborted = record_aborted;
        self
    }

    /// Attaches a streaming verifier for the duration of the run.
    pub fn verifier(self, verifier: &LiveVerifier) -> ExecutionOptions<'_> {
        ExecutionOptions {
            driver: self.driver,
            client: self.client,
            verifier: Some(verifier),
        }
    }

    /// Executes `workload` against `db` under the configured driver and
    /// returns the collected history plus execution statistics. If a
    /// verifier is attached, its time-to-first-violation clock is restarted
    /// here and every finished attempt is recorded; call
    /// [`LiveVerifier::finish`] afterwards for the verification outcome.
    pub fn run(&self, db: &dyn DbBackend, workload: &Workload) -> (History, ExecutionReport) {
        if let Some(v) = self.verifier {
            v.mark_started();
        }
        match self.driver {
            Driver::Threaded => execute_threaded(db, workload, &self.client, self.verifier),
            Driver::Interleaved { schedule_seed } => {
                execute_interleaved(db, workload, &self.client, schedule_seed, self.verifier)
            }
            Driver::Async { workers } => {
                crate::async_exec::execute_async(db, workload, &self.client, workers, self.verifier)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backends::BackendSpec;
    use crate::config::{DbConfig, IsolationMode};
    use crate::db::Database;
    use crate::faults::{FaultKind, FaultSpec};
    use mtc_core::IsolationLevel;
    use mtc_workload::{generate_mt_workload, Distribution, MtWorkloadSpec};

    fn spec(sessions: u32, txns: u32, keys: u64, seed: u64) -> MtWorkloadSpec {
        MtWorkloadSpec {
            sessions,
            txns_per_session: txns,
            num_keys: keys,
            distribution: Distribution::Uniform,
            read_only_fraction: 0.2,
            two_key_fraction: 0.5,
            seed,
        }
    }

    /// Every driver satisfies the same accounting invariants on the same
    /// workload; blocking engines skip the drivers documented as unsuited.
    #[test]
    fn all_drivers_agree_on_invariants_across_the_fleet() {
        let s = spec(4, 12, 8, 31);
        let workload = generate_mt_workload(&s);
        for backend_spec in BackendSpec::fleet(s.num_keys) {
            let drivers: &[Driver] = if backend_spec.blocking() {
                &[Driver::Threaded, Driver::Async { workers: 4 }]
            } else {
                &[
                    Driver::Threaded,
                    Driver::Interleaved { schedule_seed: 7 },
                    Driver::Async { workers: 2 },
                ]
            };
            for &driver in drivers {
                let db = backend_spec.build();
                let (history, report) = ExecutionOptions::new().driver(driver).run(&*db, &workload);
                assert!(
                    report.committed > 0,
                    "{} / {driver:?}: nothing committed",
                    backend_spec.label()
                );
                assert_eq!(report.committed + report.failed, workload.txn_count());
                assert_eq!(report.attempts, report.committed + report.aborted_attempts);
                assert_eq!(history.committed_count(), report.committed + 1); // + ⊥T
                assert!(history.has_unique_values());
            }
        }
    }

    /// A verifier attaches to *any* driver and reaches the same verdict the
    /// batch checker reaches over the collected history.
    #[test]
    fn verifier_rides_every_driver() {
        let s = spec(3, 20, 8, 17);
        let workload = generate_mt_workload(&s);
        for driver in [
            Driver::Threaded,
            Driver::Interleaved { schedule_seed: 5 },
            Driver::Async { workers: 2 },
        ] {
            let db = Database::new(DbConfig::correct(IsolationMode::Serializable, s.num_keys));
            let verifier =
                LiveVerifier::builder(IsolationLevel::Serializability, s.num_keys).build();
            let (history, _) = ExecutionOptions::new()
                .driver(driver)
                .verifier(&verifier)
                .run(&db, &workload);
            let outcome = verifier.finish();
            assert!(
                outcome.verdict.unwrap().is_satisfied(),
                "{driver:?}: clean run must verify clean"
            );
            assert_eq!(
                outcome.checked_txns,
                history.len() - 1,
                "{driver:?}: the verifier must consume every recorded transaction"
            );
            let batch = mtc_core::check_streaming(IsolationLevel::Serializability, &history);
            assert!(batch.unwrap().is_satisfied());
        }
    }

    /// stop_on_violation truncates the run on the deterministic driver too:
    /// the faulty engine is caught and no session starts a template after
    /// the latch.
    #[test]
    fn stop_on_violation_truncates_interleaved_runs() {
        let s = spec(4, 150, 4, 7);
        let workload = generate_mt_workload(&s);
        let config = DbConfig::correct(IsolationMode::Snapshot, s.num_keys)
            .with_faults(vec![FaultSpec::new(FaultKind::SkipWriteValidation, 0.6)], 7);
        let db = Database::new(config);
        let verifier = LiveVerifier::builder(IsolationLevel::SnapshotIsolation, s.num_keys)
            .stop_on_violation(true)
            .build();
        let (_, report) = ExecutionOptions::interleaved(3)
            .verifier(&verifier)
            .run(&db, &workload);
        let outcome = verifier.finish();
        assert!(outcome.verdict.unwrap().is_violated());
        let total = (s.sessions * s.txns_per_session) as usize;
        assert!(
            report.committed < total,
            "stop-on-violation must truncate the schedule ({} of {total} committed)",
            report.committed
        );
    }

    /// The deprecated wrappers stay behaviourally identical to the unified
    /// entry point (they are the compatibility contract of this redesign).
    #[test]
    #[allow(deprecated)]
    fn deprecated_wrappers_match_the_unified_api() {
        let s = spec(3, 15, 6, 23);
        let workload = generate_mt_workload(&s);
        let opts = ClientOptions::default();

        let db = crate::backends::WeakMvccDatabase::new(crate::backends::WeakLevel::ReadCommitted);
        let (h_old, r_old) = crate::execute_workload_interleaved(&db, &workload, &opts, 42);
        let db = crate::backends::WeakMvccDatabase::new(crate::backends::WeakLevel::ReadCommitted);
        let (h_new, r_new) = ExecutionOptions::interleaved(42).run(&db, &workload);
        assert_eq!(r_old.committed, r_new.committed);
        assert_eq!(h_old.len(), h_new.len());
        for (a, b) in h_old.txns().iter().zip(h_new.txns()) {
            assert_eq!(a.ops, b.ops);
        }
    }
}
