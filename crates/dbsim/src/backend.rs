//! The pluggable system-under-test layer.
//!
//! The paper runs its end-to-end pipeline against five real databases; this
//! reproduction originally hard-coded one simulated engine
//! ([`crate::Database`]). The [`DbBackend`] / [`DbTxn`] trait pair extracts
//! the client-visible surface of that engine — begin, read, write, append,
//! commit, abort, over register and list values, with begin/commit instants
//! and abort reasons — so that the whole execution stack
//! ([`crate::execute_workload`], [`crate::execute_workload_live`] and the
//! `mtc-runner` harness on top) runs unchanged against *any* engine.
//!
//! Three families of backends ship in-tree:
//!
//! * the original OCC/MVCC simulator ([`crate::Database`]), whose anomalies
//!   come from the fault-injection layer;
//! * a pessimistic strict-2PL engine with wait-die deadlock handling
//!   ([`crate::backends::TwoPlDatabase`]), whose histories are organically
//!   strictly serializable without any fault machinery;
//! * a weak MVCC engine ([`crate::backends::WeakMvccDatabase`]) that
//!   honestly implements ReadCommitted / ReadUncommitted — no snapshot
//!   reads, no write validation — and therefore *organically* produces lost
//!   updates, write skew and dirty reads under contention.
//!
//! Backends advertise what they promise via [`DbBackend::promises`]; the
//! cross-backend conformance suite (`tests/backend_conformance.rs`) holds
//! every backend to exactly its promises.

use crate::txn::{AbortReason, CommitInfo};
use mtc_core::IsolationLevel;
use mtc_history::{Key, Value};

/// An open transaction against some backend.
///
/// Reads and writes may fail with an [`AbortReason`] (a pessimistic engine
/// aborts *inside* an operation when it loses a wait-die conflict, a real
/// network client fails on timeouts); a failed operation dooms the
/// transaction, and the driver is expected to [`DbTxn::abort`] it and retry
/// the template. Engines that cannot fail mid-transaction simply always
/// return `Ok`.
///
/// Handles must be [`Send`]: the async ingest driver
/// ([`crate::execute_workload_async`]) multiplexes many sessions over a
/// small worker pool, so an open transaction may be polled from a different
/// thread after a yield point. (Every in-tree engine's handle is plain data
/// over a `Sync` backend reference, so this costs nothing.)
pub trait DbTxn: Send {
    /// The transaction's begin instant on the backend's logical clock.
    fn begin_ts(&self) -> u64;

    /// Reads the register at `key` (the implicit initial value if never
    /// written).
    fn read_register(&mut self, key: Key) -> Result<Value, AbortReason>;

    /// Writes `value` to the register at `key`.
    fn write_register(&mut self, key: Key, value: Value) -> Result<(), AbortReason>;

    /// Reads the list at `key` (empty if never written).
    fn read_list(&mut self, key: Key) -> Result<Vec<Value>, AbortReason>;

    /// Appends `element` to the list at `key` (a read-modify-write of the
    /// whole list).
    fn append(&mut self, key: Key, element: Value) -> Result<(), AbortReason>;

    /// Attempts to commit. On success the transaction's writes are visible
    /// atomically at the returned commit instant.
    fn commit(self: Box<Self>) -> Result<CommitInfo, AbortReason>;

    /// Rolls the transaction back, releasing any resources it holds.
    fn abort(self: Box<Self>) -> AbortReason;
}

/// A transactional system under test.
///
/// Implementations must be [`Sync`]: the client drivers issue transactions
/// from one thread per session against a shared backend reference.
pub trait DbBackend: Sync {
    /// Begins a transaction.
    fn begin(&self) -> Box<dyn DbTxn + '_>;

    /// Begins a retry of a previously aborted transaction whose first
    /// attempt observed `prior_begin_ts`.
    ///
    /// Backends whose abort/retry behaviour depends on transaction age
    /// (e.g. wait-die lock schedulers) should reuse the original timestamp
    /// so a retried transaction keeps ageing instead of being reborn
    /// youngest — otherwise a hot key can starve a session indefinitely.
    /// The default simply delegates to [`DbBackend::begin`].
    fn begin_retry(&self, prior_begin_ts: u64) -> Box<dyn DbTxn + '_> {
        let _ = prior_begin_ts;
        self.begin()
    }

    /// The most recently issued instant of the backend's logical clock
    /// (used as the end instant of aborted attempts in collected histories).
    fn now(&self) -> u64;

    /// Short engine label used in reports and bench series
    /// (e.g. `"sim-ser"`, `"2pl"`, `"weak-rc"`).
    fn label(&self) -> &'static str;

    /// True iff the backend *promises* the given isolation level — i.e. a
    /// fault-free run must produce histories that the corresponding checker
    /// accepts. A weak engine promises none of the checkable levels; the
    /// checkers are expected to catch its organic anomalies at every level
    /// it does not promise.
    fn promises(&self, level: IsolationLevel) -> bool;
}

/// Blanket plumbing so `&T` usable wherever `&dyn DbBackend` flows through
/// generic helpers is cheap; trait objects remain the common currency.
impl<B: DbBackend + ?Sized> DbBackend for &B {
    fn begin(&self) -> Box<dyn DbTxn + '_> {
        (**self).begin()
    }
    fn begin_retry(&self, prior_begin_ts: u64) -> Box<dyn DbTxn + '_> {
        (**self).begin_retry(prior_begin_ts)
    }
    fn now(&self) -> u64 {
        (**self).now()
    }
    fn label(&self) -> &'static str {
        (**self).label()
    }
    fn promises(&self, level: IsolationLevel) -> bool {
        (**self).promises(level)
    }
}
