//! A pessimistic strict two-phase-locking engine with wait-die deadlock
//! handling.
//!
//! This is the structural opposite of the OCC simulator in [`crate::db`]:
//! instead of validating at commit, every read takes a shared lock and every
//! write takes an exclusive lock *before* touching data, and all locks are
//! held until commit or abort (strict 2PL). Conflicts are resolved by
//! **wait-die**: a requester older than every conflicting holder waits; a
//! requester younger than some holder dies immediately with
//! [`AbortReason::Deadlock`]. Waits-for edges therefore always point from
//! older to younger transactions, so no cycle — and no deadlock — can form.
//!
//! Because two conflicting transactions can never be in flight at the same
//! time, and because the commit instant is drawn from the global clock while
//! all locks are still held, every history this engine produces is
//! organically **strictly serializable**: there is no fault machinery in
//! this module at all, and the cross-backend conformance suite holds it to
//! `SSER ⊇ SER ⊇ SI` with zero violations.

use crate::backend::{DbBackend, DbTxn};
use crate::store::StoredValue;
use crate::txn::{AbortReason, CommitInfo};
use mtc_core::IsolationLevel;
use mtc_history::{Key, Value, INIT_VALUE};
use parking_lot::Mutex;
use std::collections::{HashMap, HashSet};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Condvar;
use std::time::Duration;

/// Lock mode of one entry in the lock table.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum LockMode {
    Shared,
    Exclusive,
}

/// One key's lock: the holding transactions (their begin instants double as
/// transaction identifiers — the clock makes them unique) and the mode.
#[derive(Debug)]
struct Lock {
    mode: LockMode,
    holders: Vec<u64>,
}

#[derive(Default)]
struct TwoPlState {
    /// Latest committed value per key. Strict 2PL needs no version chains:
    /// a reader can only get here after every conflicting writer committed
    /// or rolled back.
    committed: HashMap<Key, StoredValue>,
    /// The lock table. Entries are removed when the holder set drains.
    locks: HashMap<Key, Lock>,
}

/// The strict-2PL engine.
///
/// The lock-table mutex is the poison-free `parking_lot` compat mutex: a
/// client thread that panics mid-transaction must not poison the shared
/// state and cascade-panic every other session in the fleet. The panicked
/// transaction's key locks are released by [`TwoPlTxn`]'s `Drop` impl
/// during unwinding, so the other clients simply proceed.
pub struct TwoPlDatabase {
    clock: AtomicU64,
    state: Mutex<TwoPlState>,
    released: Condvar,
}

impl TwoPlDatabase {
    /// Creates an empty engine. Keys never written read as the implicit
    /// initial value, mirroring the `⊥T` convention of the checkers, so no
    /// pre-initialization pass is needed.
    pub fn new() -> Self {
        TwoPlDatabase {
            clock: AtomicU64::new(1),
            state: Mutex::new(TwoPlState::default()),
            released: Condvar::new(),
        }
    }

    /// A fresh, strictly increasing instant of the engine's logical clock.
    fn tick(&self) -> u64 {
        self.clock.fetch_add(1, Ordering::SeqCst)
    }

    /// Begins a transaction. Its begin instant is also its wait-die
    /// priority: smaller = older = allowed to wait.
    pub fn begin(&self) -> TwoPlTxn<'_> {
        self.begin_at(self.tick())
    }

    /// Begins a retry of an aborted transaction, reusing the first
    /// attempt's begin instant as its wait-die priority. Without this a
    /// wait-die victim is reborn as the youngest transaction in the
    /// system and keeps dying to the same older lock holders — under hot
    /// contention a session can starve indefinitely. Reusing the original
    /// instant lets the retry age until it is the oldest waiter and must
    /// win. Backdating is safe for the collected histories: sessions
    /// retry sequentially, so the instant is never held by two live
    /// transactions, and an earlier begin only widens the attempt's
    /// real-time span (a conservative over-approximation).
    pub fn begin_retry(&self, prior_begin_ts: u64) -> TwoPlTxn<'_> {
        self.begin_at(prior_begin_ts)
    }

    fn begin_at(&self, begin_ts: u64) -> TwoPlTxn<'_> {
        TwoPlTxn {
            db: self,
            begin_ts,
            writes: HashMap::new(),
            write_order: Vec::new(),
            held: HashSet::new(),
            doomed: false,
        }
    }

    /// Acquires `key` for `txn_ts` in the requested mode, blocking only in
    /// the wait-die "older waits" case. Returns the wait-die death as an
    /// error; the caller's transaction must then abort.
    fn acquire(&self, txn_ts: u64, key: Key, exclusive: bool) -> Result<(), AbortReason> {
        let mut st = self.state.lock();
        loop {
            let lock = st.locks.entry(key).or_insert(Lock {
                mode: LockMode::Shared,
                holders: Vec::new(),
            });
            let i_hold = lock.holders.contains(&txn_ts);
            let others = lock.holders.iter().any(|&h| h != txn_ts);
            let granted = if lock.holders.is_empty() {
                lock.mode = if exclusive {
                    LockMode::Exclusive
                } else {
                    LockMode::Shared
                };
                lock.holders.push(txn_ts);
                true
            } else if !exclusive {
                // Shared request: compatible with a shared lock, and a
                // no-op when this transaction already holds the key in
                // either mode.
                if i_hold {
                    true
                } else if lock.mode == LockMode::Shared {
                    lock.holders.push(txn_ts);
                    true
                } else {
                    false
                }
            } else {
                // Exclusive request: granted when this transaction is the
                // sole holder (upgrade) or already exclusive.
                if i_hold && !others {
                    lock.mode = LockMode::Exclusive;
                    true
                } else {
                    false
                }
            };
            if granted {
                return Ok(());
            }
            // Wait-die: wait only when older than every conflicting holder;
            // die when any holder is older. Waits-for edges then always run
            // old → young, which keeps the waits-for graph acyclic.
            let oldest_other = lock
                .holders
                .iter()
                .filter(|&&h| h != txn_ts)
                .min()
                .copied()
                .expect("a conflict implies another holder");
            if txn_ts > oldest_other {
                return Err(AbortReason::Deadlock);
            }
            // The timeout is a belt-and-braces re-check, not a correctness
            // requirement: every release notifies the condvar.
            let (guard, _) = self
                .released
                .wait_timeout(st, Duration::from_millis(10))
                .unwrap_or_else(|e| e.into_inner());
            st = guard;
        }
    }

    /// Releases every lock in `held` and wakes the waiters.
    fn release_all(&self, txn_ts: u64, held: &HashSet<Key>) {
        if held.is_empty() {
            return;
        }
        let mut st = self.state.lock();
        for key in held {
            if let Some(lock) = st.locks.get_mut(key) {
                lock.holders.retain(|&h| h != txn_ts);
                if lock.holders.is_empty() {
                    st.locks.remove(key);
                }
            }
        }
        drop(st);
        self.released.notify_all();
    }

    /// Number of keys currently locked (diagnostics and tests).
    pub fn locked_key_count(&self) -> usize {
        self.state.lock().locks.len()
    }
}

impl Default for TwoPlDatabase {
    fn default() -> Self {
        TwoPlDatabase::new()
    }
}

/// An open transaction against [`TwoPlDatabase`].
pub struct TwoPlTxn<'db> {
    db: &'db TwoPlDatabase,
    begin_ts: u64,
    writes: HashMap<Key, StoredValue>,
    write_order: Vec<Key>,
    held: HashSet<Key>,
    /// Set once a lock acquisition died; all further operations refuse.
    doomed: bool,
}

impl<'db> TwoPlTxn<'db> {
    fn lock(&mut self, key: Key, exclusive: bool) -> Result<(), AbortReason> {
        if self.doomed {
            return Err(AbortReason::Deadlock);
        }
        match self.db.acquire(self.begin_ts, key, exclusive) {
            Ok(()) => {
                self.held.insert(key);
                Ok(())
            }
            Err(reason) => {
                self.doomed = true;
                Err(reason)
            }
        }
    }

    fn read_stored(&mut self, key: Key) -> Result<StoredValue, AbortReason> {
        self.lock(key, false)?;
        if let Some(v) = self.writes.get(&key) {
            return Ok(v.clone());
        }
        let st = self.db.state.lock();
        Ok(st
            .committed
            .get(&key)
            .cloned()
            .unwrap_or(StoredValue::Register(INIT_VALUE)))
    }

    fn buffer_write(&mut self, key: Key, value: StoredValue) {
        if !self.writes.contains_key(&key) {
            self.write_order.push(key);
        }
        self.writes.insert(key, value);
    }

    fn finish(&mut self) {
        let held = std::mem::take(&mut self.held);
        self.db.release_all(self.begin_ts, &held);
    }
}

impl<'db> DbTxn for TwoPlTxn<'db> {
    fn begin_ts(&self) -> u64 {
        self.begin_ts
    }

    fn read_register(&mut self, key: Key) -> Result<Value, AbortReason> {
        Ok(match self.read_stored(key)? {
            StoredValue::Register(v) => v,
            StoredValue::List(_) => INIT_VALUE,
        })
    }

    fn write_register(&mut self, key: Key, value: Value) -> Result<(), AbortReason> {
        self.lock(key, true)?;
        self.buffer_write(key, StoredValue::Register(value));
        Ok(())
    }

    fn read_list(&mut self, key: Key) -> Result<Vec<Value>, AbortReason> {
        Ok(match self.read_stored(key)? {
            StoredValue::List(l) => l,
            StoredValue::Register(v) if v == INIT_VALUE => Vec::new(),
            StoredValue::Register(v) => vec![v],
        })
    }

    fn append(&mut self, key: Key, element: Value) -> Result<(), AbortReason> {
        self.lock(key, true)?;
        let mut list = self.read_list(key)?;
        list.push(element);
        self.buffer_write(key, StoredValue::List(list));
        Ok(())
    }

    fn commit(mut self: Box<Self>) -> Result<CommitInfo, AbortReason> {
        if self.doomed {
            self.finish();
            return Err(AbortReason::Deadlock);
        }
        // Install while still holding every lock: the commit instant is
        // drawn before any conflicting transaction can observe (or miss)
        // the writes, which is what makes the histories strictly
        // serializable on the shared logical clock.
        let commit_ts = {
            let mut st = self.db.state.lock();
            let commit_ts = self.db.tick();
            for key in &self.write_order {
                st.committed
                    .insert(*key, self.writes.get(key).expect("buffered").clone());
            }
            commit_ts
        };
        self.finish();
        Ok(CommitInfo { commit_ts })
    }

    fn abort(mut self: Box<Self>) -> AbortReason {
        let reason = if self.doomed {
            AbortReason::Deadlock
        } else {
            AbortReason::UserAbort
        };
        self.finish();
        reason
    }
}

impl<'db> Drop for TwoPlTxn<'db> {
    fn drop(&mut self) {
        // Safety net for leaked handles: strict 2PL must never strand a
        // lock. `finish` is idempotent (the held set is taken).
        self.finish();
    }
}

impl DbBackend for TwoPlDatabase {
    fn begin(&self) -> Box<dyn DbTxn + '_> {
        Box::new(TwoPlDatabase::begin(self))
    }

    fn begin_retry(&self, prior_begin_ts: u64) -> Box<dyn DbTxn + '_> {
        Box::new(TwoPlDatabase::begin_retry(self, prior_begin_ts))
    }

    fn now(&self) -> u64 {
        self.clock.load(Ordering::SeqCst)
    }

    fn label(&self) -> &'static str {
        "2pl"
    }

    fn promises(&self, _level: IsolationLevel) -> bool {
        // Strict 2PL on a single logical clock promises strict
        // serializability and everything below it.
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn read_your_own_writes_and_commit_installs() {
        let db = TwoPlDatabase::new();
        let mut t = db.begin();
        assert_eq!(t.read_register(Key(0)).unwrap(), INIT_VALUE);
        t.write_register(Key(0), Value(42)).unwrap();
        assert_eq!(t.read_register(Key(0)).unwrap(), Value(42));
        let info = Box::new(t).commit().unwrap();
        let mut t2 = db.begin();
        assert!(t2.begin_ts() > info.commit_ts);
        assert_eq!(t2.read_register(Key(0)).unwrap(), Value(42));
    }

    #[test]
    fn younger_conflicting_transaction_dies() {
        let db = TwoPlDatabase::new();
        let mut older = db.begin();
        older.write_register(Key(0), Value(1)).unwrap();
        // The younger transaction requests the same key: wait-die kills it
        // immediately (no blocking, so this is safe on one thread).
        let mut younger = db.begin();
        assert_eq!(
            younger.write_register(Key(0), Value(2)),
            Err(AbortReason::Deadlock)
        );
        // The doomed handle refuses further work and aborts with the cause.
        assert_eq!(younger.read_register(Key(1)), Err(AbortReason::Deadlock));
        assert_eq!(Box::new(younger).abort(), AbortReason::Deadlock);
        assert!(Box::new(older).commit().is_ok());
        assert_eq!(db.locked_key_count(), 0);
    }

    #[test]
    fn shared_locks_coexist_and_reads_see_committed_state() {
        let db = TwoPlDatabase::new();
        let mut w = db.begin();
        w.write_register(Key(3), Value(7)).unwrap();
        Box::new(w).commit().unwrap();
        let mut r1 = db.begin();
        let mut r2 = db.begin();
        assert_eq!(r1.read_register(Key(3)).unwrap(), Value(7));
        assert_eq!(r2.read_register(Key(3)).unwrap(), Value(7));
        assert!(Box::new(r1).commit().is_ok());
        assert!(Box::new(r2).commit().is_ok());
    }

    #[test]
    fn older_transaction_waits_for_younger_holder() {
        // T1 (older) conflicts with T2 (younger holder): T1 must *wait*
        // rather than die, and proceed once T2 commits on another thread.
        let db = TwoPlDatabase::new();
        let older = db.begin();
        let mut younger = db.begin();
        younger.write_register(Key(0), Value(5)).unwrap();
        std::thread::scope(|scope| {
            let handle = scope.spawn(|| {
                // Give the older transaction time to start waiting.
                std::thread::sleep(Duration::from_millis(20));
                Box::new(younger).commit().unwrap()
            });
            let mut older = older;
            // Blocks until the younger holder releases, then reads its
            // committed value.
            assert_eq!(older.read_register(Key(0)).unwrap(), Value(5));
            let info = handle.join().unwrap();
            assert!(older.begin_ts() < info.commit_ts);
            assert!(Box::new(older).commit().is_ok());
        });
    }

    #[test]
    fn dropped_handles_release_their_locks() {
        let db = TwoPlDatabase::new();
        let mut t = db.begin();
        t.write_register(Key(0), Value(1)).unwrap();
        assert_eq!(db.locked_key_count(), 1);
        drop(t);
        assert_eq!(db.locked_key_count(), 0);
        // The key is lockable again and the write was discarded.
        let mut t2 = db.begin();
        assert_eq!(t2.read_register(Key(0)).unwrap(), INIT_VALUE);
    }

    #[test]
    fn lists_append_under_exclusive_locks() {
        let db = TwoPlDatabase::new();
        let mut t1 = db.begin();
        t1.append(Key(9), Value(1)).unwrap();
        t1.append(Key(9), Value(2)).unwrap();
        Box::new(t1).commit().unwrap();
        let mut t2 = db.begin();
        assert_eq!(t2.read_list(Key(9)).unwrap(), vec![Value(1), Value(2)]);
    }

    #[test]
    fn panicked_txn_releases_locks_and_other_clients_proceed() {
        // Regression for the poisoned-lock cascade: with `std::sync::Mutex`
        // plus `.expect("2PL state poisoned")`, one panicking client thread
        // poisoned the shared lock table and every later `lock()` call
        // panicked too, taking the whole fleet down. The poison-free compat
        // mutex recovers; the panicked transaction's key locks are released
        // by `TwoPlTxn`'s Drop impl during unwinding.
        let db = TwoPlDatabase::new();
        let panicked = std::thread::scope(|scope| {
            scope
                .spawn(|| {
                    std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                        let mut t = db.begin();
                        t.write_register(Key(0), Value(1)).unwrap();
                        t.read_register(Key(1)).unwrap();
                        panic!("client died mid-transaction");
                    }))
                })
                .join()
                .expect("the panic must be caught inside the thread")
        });
        assert!(panicked.is_err(), "the client closure must have panicked");
        // Its locks are gone and the shared state is not poisoned: other
        // clients lock, read and commit as if nothing happened.
        assert_eq!(db.locked_key_count(), 0);
        let mut t = db.begin();
        assert_eq!(t.read_register(Key(0)).unwrap(), INIT_VALUE);
        t.write_register(Key(0), Value(9)).unwrap();
        assert!(Box::new(t).commit().is_ok());
        let mut t2 = db.begin();
        assert_eq!(t2.read_register(Key(0)).unwrap(), Value(9));
        drop(t2);

        // Belt and braces: panic *while the state mutex itself is held* (a
        // reader panicking inside the diagnostic closure), which is what
        // actually poisons a std mutex. Subsequent clients must still work.
        let _ = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _guard = db.state.lock();
            panic!("died while holding the lock-table mutex");
        }));
        assert_eq!(db.locked_key_count(), 0, "lock() must recover, not panic");
        let mut t3 = db.begin();
        t3.write_register(Key(2), Value(11)).unwrap();
        assert!(Box::new(t3).commit().is_ok());
    }

    #[test]
    fn retries_reuse_their_timestamp_and_cannot_starve() {
        // Hot-contention regression for wait-die starvation: several
        // threads hammer a single key, retrying each wait-die death with
        // `begin_retry`. Because a retry keeps its original (ever-ageing)
        // instant, every session must eventually become the oldest
        // contender and commit — the test would livelock (and time out)
        // if retries drew fresh timestamps instead.
        const THREADS: u64 = 4;
        const TXNS_PER_THREAD: u64 = 25;
        let db = TwoPlDatabase::new();
        std::thread::scope(|scope| {
            for _ in 0..THREADS {
                scope.spawn(|| {
                    for _ in 0..TXNS_PER_THREAD {
                        let mut first_ts = None;
                        loop {
                            let mut t = match first_ts {
                                None => db.begin(),
                                Some(ts) => db.begin_retry(ts),
                            };
                            first_ts.get_or_insert(t.begin_ts());
                            assert_eq!(first_ts, Some(t.begin_ts()));
                            let attempt = (|| {
                                let v = t.read_register(Key(0))?;
                                t.write_register(Key(0), Value(v.0 + 1))?;
                                Box::new(t).commit()
                            })();
                            match attempt {
                                Ok(_) => break,
                                Err(AbortReason::Deadlock) => continue,
                                Err(other) => panic!("unexpected abort: {other:?}"),
                            }
                        }
                    }
                });
            }
        });
        let mut t = db.begin();
        let total = THREADS * TXNS_PER_THREAD;
        assert_eq!(t.read_register(Key(0)).unwrap(), Value(total));
        drop(t);
        assert_eq!(db.locked_key_count(), 0);
    }
}
