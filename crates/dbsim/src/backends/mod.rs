//! The in-tree backend fleet: every engine that can serve as the system
//! under test, plus [`BackendSpec`] — a buildable, serializable description
//! of a backend used by the runner's experiment matrix and the bench
//! harness to construct a *fresh* instance per run.

pub mod twopl;
pub mod weakmvcc;

pub use twopl::{TwoPlDatabase, TwoPlTxn};
pub use weakmvcc::{WeakLevel, WeakMvccDatabase, WeakTxn};

use crate::backend::DbBackend;
use crate::config::{DbConfig, IsolationMode};
use crate::db::Database;

/// A buildable description of a backend. History generation needs a fresh
/// store per run (unique values, `⊥T` initial state), so the experiment
/// sweeps hold specs and call [`BackendSpec::build`] per data point rather
/// than sharing live instances.
#[derive(Clone, Debug)]
pub enum BackendSpec {
    /// The OCC/MVCC simulator at the configured isolation mode, with
    /// optional fault injection.
    Sim(DbConfig),
    /// The pessimistic strict-2PL engine (wait-die).
    TwoPl,
    /// The weak MVCC engine at the given weak level.
    WeakMvcc(WeakLevel),
}

impl BackendSpec {
    /// Builds a fresh backend instance.
    pub fn build(&self) -> Box<dyn DbBackend> {
        match self {
            BackendSpec::Sim(config) => Box::new(Database::new(config.clone())),
            BackendSpec::TwoPl => Box::new(TwoPlDatabase::new()),
            BackendSpec::WeakMvcc(level) => Box::new(WeakMvccDatabase::new(*level)),
        }
    }

    /// The label the built backend will report.
    pub fn label(&self) -> &'static str {
        match self {
            BackendSpec::Sim(config) => match config.isolation {
                IsolationMode::ReadCommitted => "sim-rc",
                IsolationMode::Snapshot => "sim-si",
                IsolationMode::Serializable => "sim-ser",
                IsolationMode::StrictSerializable => "sim-sser",
            },
            BackendSpec::TwoPl => "2pl",
            BackendSpec::WeakMvcc(level) => level.label(),
        }
    }

    /// True iff the backend's operations can block on another in-flight
    /// transaction — such engines must not be driven by the single-thread
    /// interleaved executor
    /// ([`crate::client::execute_workload_interleaved`]).
    pub fn blocking(&self) -> bool {
        matches!(self, BackendSpec::TwoPl)
    }

    /// The default cross-backend fleet: every engine family at every mode
    /// it supports, all fault-free. `num_keys` sizes the simulator's
    /// pre-initialized key space (the other engines initialize lazily).
    pub fn fleet(num_keys: u64) -> Vec<BackendSpec> {
        vec![
            BackendSpec::Sim(DbConfig::correct(IsolationMode::Serializable, num_keys)),
            BackendSpec::Sim(DbConfig::correct(IsolationMode::Snapshot, num_keys)),
            BackendSpec::Sim(DbConfig::correct(IsolationMode::ReadCommitted, num_keys)),
            BackendSpec::TwoPl,
            BackendSpec::WeakMvcc(WeakLevel::ReadCommitted),
            BackendSpec::WeakMvcc(WeakLevel::ReadUncommitted),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mtc_core::IsolationLevel;

    #[test]
    fn fleet_labels_are_distinct_and_match_built_backends() {
        use std::collections::HashSet;
        let fleet = BackendSpec::fleet(4);
        let labels: HashSet<&str> = fleet.iter().map(|s| s.label()).collect();
        assert_eq!(labels.len(), fleet.len());
        for spec in &fleet {
            let backend = spec.build();
            assert_eq!(backend.label(), spec.label());
        }
    }

    #[test]
    fn promises_form_the_expected_matrix() {
        use IsolationLevel::*;
        let cases: Vec<(BackendSpec, [bool; 3])> = vec![
            (
                BackendSpec::Sim(DbConfig::correct(IsolationMode::Serializable, 2)),
                [true, true, true],
            ),
            (
                BackendSpec::Sim(DbConfig::correct(IsolationMode::Snapshot, 2)),
                [true, false, false],
            ),
            (
                BackendSpec::Sim(DbConfig::correct(IsolationMode::ReadCommitted, 2)),
                [false, false, false],
            ),
            (BackendSpec::TwoPl, [true, true, true]),
            (
                BackendSpec::WeakMvcc(WeakLevel::ReadCommitted),
                [false, false, false],
            ),
            (
                BackendSpec::WeakMvcc(WeakLevel::ReadUncommitted),
                [false, false, false],
            ),
        ];
        for (spec, [si, ser, sser]) in cases {
            let b = spec.build();
            assert_eq!(b.promises(SnapshotIsolation), si, "{} SI", spec.label());
            assert_eq!(b.promises(Serializability), ser, "{} SER", spec.label());
            assert_eq!(
                b.promises(StrictSerializability),
                sser,
                "{} SSER",
                spec.label()
            );
        }
    }
}
