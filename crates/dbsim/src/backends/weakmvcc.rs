//! A weak multi-version engine that honestly implements ReadCommitted and
//! ReadUncommitted — and therefore *organically* produces anomalies.
//!
//! Unlike the OCC simulator (whose anomalies are injected by the fault
//! layer), this engine misbehaves by **design of its concurrency control**:
//!
//! * [`WeakLevel::ReadCommitted`] — every read observes the latest
//!   *committed* version at the instant of the read (no begin snapshot),
//!   writes are buffered and installed at commit with **no validation** of
//!   any kind. Two concurrent read-modify-writes of the same key both
//!   commit → **lost update**; disjoint-key RMW pairs interleave → **write
//!   skew**; two reads of the same key straddling a concurrent commit →
//!   **read skew / non-repeatable read**.
//! * [`WeakLevel::ReadUncommitted`] — additionally, writes are *published
//!   immediately*, before commit, and reads observe the newest version
//!   regardless of commit status → **dirty reads**, and **aborted reads**
//!   when the publishing transaction later rolls back.
//!
//! There is no fault machinery anywhere in this module. The conformance
//! suite uses this engine as the first organically-buggy system under test:
//! its anomalies must be caught by the checkers at every isolation level the
//! engine does not promise (which, for the three checkable levels, is all
//! of them).

use crate::backend::{DbBackend, DbTxn};
use crate::store::StoredValue;
use crate::txn::{AbortReason, CommitInfo};
use mtc_core::IsolationLevel;
use mtc_history::{Key, Value, INIT_VALUE};
use parking_lot::RwLock;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};

/// The (weak) isolation level the engine honestly implements.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum WeakLevel {
    /// Latest-committed reads, unvalidated buffered writes.
    ReadCommitted,
    /// Latest-*any* reads, writes published before commit.
    ReadUncommitted,
}

impl WeakLevel {
    /// Short label used in reports.
    pub fn label(self) -> &'static str {
        match self {
            WeakLevel::ReadCommitted => "weak-rc",
            WeakLevel::ReadUncommitted => "weak-ru",
        }
    }
}

/// One version of a key. Publish order (the vector order) is the only
/// ordering the engine maintains — deliberately: a weak engine has no
/// globally consistent snapshot to offer.
#[derive(Clone, Debug)]
struct WeakVersion {
    /// The transaction (begin instant) that produced the version.
    txn: u64,
    /// False while the producing transaction is still in flight
    /// (ReadUncommitted publishes eagerly).
    committed: bool,
    value: StoredValue,
}

/// The weak MVCC engine.
pub struct WeakMvccDatabase {
    level: WeakLevel,
    clock: AtomicU64,
    store: RwLock<HashMap<Key, Vec<WeakVersion>>>,
}

impl WeakMvccDatabase {
    /// Creates an empty engine at the given weak level. Keys never written
    /// read as the implicit initial value.
    pub fn new(level: WeakLevel) -> Self {
        WeakMvccDatabase {
            level,
            clock: AtomicU64::new(1),
            store: RwLock::new(HashMap::new()),
        }
    }

    /// The engine's configured weak level.
    pub fn level(&self) -> WeakLevel {
        self.level
    }

    fn tick(&self) -> u64 {
        self.clock.fetch_add(1, Ordering::SeqCst)
    }

    /// Begins a transaction.
    pub fn begin(&self) -> WeakTxn<'_> {
        WeakTxn {
            db: self,
            begin_ts: self.tick(),
            buffered: HashMap::new(),
            write_order: Vec::new(),
            published: Vec::new(),
        }
    }

    /// Newest version of `key` visible at the engine's level: the last
    /// committed one under ReadCommitted, the last published one (committed
    /// or not) under ReadUncommitted.
    fn read_visible(&self, key: Key) -> Option<StoredValue> {
        let store = self.store.read();
        let chain = store.get(&key)?;
        match self.level {
            WeakLevel::ReadCommitted => chain
                .iter()
                .rev()
                .find(|v| v.committed)
                .map(|v| v.value.clone()),
            WeakLevel::ReadUncommitted => chain.last().map(|v| v.value.clone()),
        }
    }

    /// Publishes an uncommitted version (ReadUncommitted write path). A
    /// repeated write of the same key by the same transaction replaces its
    /// own uncommitted version in place.
    fn publish(&self, txn: u64, key: Key, value: StoredValue) {
        let mut store = self.store.write();
        let chain = store.entry(key).or_default();
        if let Some(mine) = chain
            .iter_mut()
            .rev()
            .find(|v| v.txn == txn && !v.committed)
        {
            mine.value = value;
        } else {
            chain.push(WeakVersion {
                txn,
                committed: false,
                value,
            });
        }
    }

    /// Marks every uncommitted version of `txn` committed (RU commit path).
    fn commit_published(&self, txn: u64) {
        let mut store = self.store.write();
        for chain in store.values_mut() {
            for v in chain.iter_mut() {
                if v.txn == txn && !v.committed {
                    v.committed = true;
                }
            }
        }
    }

    /// Removes every uncommitted version of `txn` (RU abort path).
    fn discard_published(&self, txn: u64) {
        let mut store = self.store.write();
        for chain in store.values_mut() {
            chain.retain(|v| v.committed || v.txn != txn);
        }
    }

    /// Installs a whole committed write set (RC commit path).
    fn install_committed<'a>(
        &self,
        txn: u64,
        writes: impl IntoIterator<Item = (Key, &'a StoredValue)>,
    ) {
        let mut store = self.store.write();
        for (key, value) in writes {
            store.entry(key).or_default().push(WeakVersion {
                txn,
                committed: true,
                value: value.clone(),
            });
        }
    }

    /// Total number of resident versions (diagnostics and tests).
    pub fn version_count(&self) -> usize {
        self.store.read().values().map(Vec::len).sum()
    }
}

/// An open transaction against [`WeakMvccDatabase`].
pub struct WeakTxn<'db> {
    db: &'db WeakMvccDatabase,
    begin_ts: u64,
    /// RC: the buffered write set. RU: a cache of this transaction's own
    /// writes (also published immediately).
    buffered: HashMap<Key, StoredValue>,
    write_order: Vec<Key>,
    /// RU: keys with a published uncommitted version.
    published: Vec<Key>,
}

impl<'db> WeakTxn<'db> {
    fn read_stored(&mut self, key: Key) -> StoredValue {
        if let Some(v) = self.buffered.get(&key) {
            return v.clone();
        }
        self.db
            .read_visible(key)
            .unwrap_or(StoredValue::Register(INIT_VALUE))
    }

    fn write_stored(&mut self, key: Key, value: StoredValue) {
        if !self.buffered.contains_key(&key) {
            self.write_order.push(key);
        }
        self.buffered.insert(key, value.clone());
        if self.db.level == WeakLevel::ReadUncommitted {
            if !self.published.contains(&key) {
                self.published.push(key);
            }
            self.db.publish(self.begin_ts, key, value);
        }
    }
}

impl<'db> DbTxn for WeakTxn<'db> {
    fn begin_ts(&self) -> u64 {
        self.begin_ts
    }

    fn read_register(&mut self, key: Key) -> Result<Value, AbortReason> {
        Ok(match self.read_stored(key) {
            StoredValue::Register(v) => v,
            StoredValue::List(_) => INIT_VALUE,
        })
    }

    fn write_register(&mut self, key: Key, value: Value) -> Result<(), AbortReason> {
        self.write_stored(key, StoredValue::Register(value));
        Ok(())
    }

    fn read_list(&mut self, key: Key) -> Result<Vec<Value>, AbortReason> {
        Ok(match self.read_stored(key) {
            StoredValue::List(l) => l,
            StoredValue::Register(v) if v == INIT_VALUE => Vec::new(),
            StoredValue::Register(v) => vec![v],
        })
    }

    fn append(&mut self, key: Key, element: Value) -> Result<(), AbortReason> {
        let mut list = self.read_list(key)?;
        list.push(element);
        self.write_stored(key, StoredValue::List(list));
        Ok(())
    }

    fn commit(self: Box<Self>) -> Result<CommitInfo, AbortReason> {
        // No validation whatsoever — that is the engine's defining "bug".
        let commit_ts = self.db.tick();
        match self.db.level {
            WeakLevel::ReadCommitted => {
                self.db.install_committed(
                    self.begin_ts,
                    self.write_order
                        .iter()
                        .map(|k| (*k, self.buffered.get(k).expect("buffered"))),
                );
            }
            WeakLevel::ReadUncommitted => {
                self.db.commit_published(self.begin_ts);
            }
        }
        Ok(CommitInfo { commit_ts })
    }

    fn abort(self: Box<Self>) -> AbortReason {
        if self.db.level == WeakLevel::ReadUncommitted && !self.published.is_empty() {
            // The dirty versions other transactions may already have read
            // are withdrawn — any such read is now an aborted read.
            self.db.discard_published(self.begin_ts);
        }
        AbortReason::UserAbort
    }
}

impl DbBackend for WeakMvccDatabase {
    fn begin(&self) -> Box<dyn DbTxn + '_> {
        Box::new(WeakMvccDatabase::begin(self))
    }

    fn now(&self) -> u64 {
        self.clock.load(Ordering::SeqCst)
    }

    fn label(&self) -> &'static str {
        self.level.label()
    }

    fn promises(&self, _level: IsolationLevel) -> bool {
        // Neither weak level reaches SI, SER or SSER: the engine promises
        // none of the checkable levels, so the checkers are expected to
        // catch its organic anomalies at all of them.
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rc_reads_latest_committed_not_a_snapshot() {
        let db = WeakMvccDatabase::new(WeakLevel::ReadCommitted);
        let mut t1 = db.begin();
        assert_eq!(t1.read_register(Key(0)).unwrap(), INIT_VALUE);
        let mut t2 = db.begin();
        t2.write_register(Key(0), Value(7)).unwrap();
        Box::new(t2).commit().unwrap();
        // No snapshot: the same transaction now sees the new value
        // (non-repeatable read by design).
        assert_eq!(t1.read_register(Key(0)).unwrap(), Value(7));
    }

    #[test]
    fn rc_allows_lost_updates_organically() {
        let db = WeakMvccDatabase::new(WeakLevel::ReadCommitted);
        let mut t1 = db.begin();
        let mut t2 = db.begin();
        assert_eq!(t1.read_register(Key(0)).unwrap(), INIT_VALUE);
        assert_eq!(t2.read_register(Key(0)).unwrap(), INIT_VALUE);
        t1.write_register(Key(0), Value(1)).unwrap();
        t2.write_register(Key(0), Value(2)).unwrap();
        assert!(Box::new(t1).commit().is_ok());
        assert!(
            Box::new(t2).commit().is_ok(),
            "no first-committer-wins: the lost update must commit"
        );
    }

    #[test]
    fn rc_buffers_writes_until_commit() {
        let db = WeakMvccDatabase::new(WeakLevel::ReadCommitted);
        let mut w = db.begin();
        w.write_register(Key(0), Value(9)).unwrap();
        let mut r = db.begin();
        assert_eq!(
            r.read_register(Key(0)).unwrap(),
            INIT_VALUE,
            "RC must not expose uncommitted writes"
        );
        Box::new(w).commit().unwrap();
        assert_eq!(r.read_register(Key(0)).unwrap(), Value(9));
    }

    #[test]
    fn ru_exposes_dirty_writes_and_withdraws_them_on_abort() {
        let db = WeakMvccDatabase::new(WeakLevel::ReadUncommitted);
        let mut w = db.begin();
        w.write_register(Key(0), Value(13)).unwrap();
        let mut r = db.begin();
        assert_eq!(
            r.read_register(Key(0)).unwrap(),
            Value(13),
            "RU must expose the uncommitted write"
        );
        assert_eq!(Box::new(w).abort(), AbortReason::UserAbort);
        // The dirty version is gone; the earlier read is an aborted read.
        let mut r2 = db.begin();
        assert_eq!(r2.read_register(Key(0)).unwrap(), INIT_VALUE);
        assert!(Box::new(r).commit().is_ok());
    }

    #[test]
    fn ru_rewrite_replaces_own_uncommitted_version() {
        let db = WeakMvccDatabase::new(WeakLevel::ReadUncommitted);
        let mut w = db.begin();
        w.write_register(Key(0), Value(1)).unwrap();
        w.write_register(Key(0), Value(2)).unwrap();
        assert_eq!(db.version_count(), 1, "self-overwrite must not stack");
        Box::new(w).commit().unwrap();
        let mut r = db.begin();
        assert_eq!(r.read_register(Key(0)).unwrap(), Value(2));
    }

    #[test]
    fn lists_append_without_isolation() {
        let db = WeakMvccDatabase::new(WeakLevel::ReadCommitted);
        let mut t1 = db.begin();
        t1.append(Key(4), Value(1)).unwrap();
        Box::new(t1).commit().unwrap();
        let mut t2 = db.begin();
        assert_eq!(t2.read_list(Key(4)).unwrap(), vec![Value(1)]);
    }
}
