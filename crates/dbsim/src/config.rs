//! Database configuration: isolation mode, latency model, fault injection.

use crate::faults::FaultSpec;
use serde::{Deserialize, Serialize};
use std::time::Duration;

/// The isolation level the simulated database *claims* to provide.
///
/// Without fault injection each mode really provides its level:
///
/// * [`IsolationMode::ReadCommitted`] — reads always observe the latest
///   committed version at the time of the read; no commit-time validation.
/// * [`IsolationMode::Snapshot`] — every transaction reads from the snapshot
///   taken at its begin timestamp and commits only if none of its written
///   keys has a version newer than that snapshot (first-committer-wins).
/// * [`IsolationMode::Serializable`] — snapshot reads plus commit-time
///   validation of the *read set* (optimistic concurrency control with
///   backward validation); every committed transaction logically executes at
///   its commit instant, which also yields strict serializability with
///   respect to the recorded wall-clock timestamps.
/// * [`IsolationMode::StrictSerializable`] — an alias of the serializable
///   engine, kept separate so experiment configurations read naturally.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum IsolationMode {
    /// Weak isolation: no snapshot, no validation.
    ReadCommitted,
    /// Snapshot isolation with first-committer-wins.
    Snapshot,
    /// Serializability via optimistic read/write validation.
    Serializable,
    /// Strict serializability. **This is a silent alias of
    /// [`IsolationMode::Serializable`]** — the two variants select exactly
    /// the same engine and differ only in the label experiments report.
    ///
    /// The alias is *sound*, not a shortcut: the serializable engine
    /// validates reads and writes against the begin snapshot and draws
    /// begin and commit instants from one strictly increasing logical
    /// clock while holding the commit mutex, so every committed
    /// transaction logically executes at its commit instant and the
    /// recorded intervals are real-time consistent. Fault-free histories
    /// therefore pass the SSER checker, not merely the SER one (asserted
    /// by `strict_serializable_alias_is_sound` below and exercised across
    /// engines by the cross-backend conformance suite).
    StrictSerializable,
}

impl IsolationMode {
    /// True when commit-time write validation (first-committer-wins) applies.
    pub fn validates_writes(self) -> bool {
        !matches!(self, IsolationMode::ReadCommitted)
    }

    /// True when commit-time read validation applies.
    pub fn validates_reads(self) -> bool {
        matches!(
            self,
            IsolationMode::Serializable | IsolationMode::StrictSerializable
        )
    }

    /// True when reads come from the transaction's begin snapshot rather than
    /// from the latest committed state.
    pub fn snapshot_reads(self) -> bool {
        !matches!(self, IsolationMode::ReadCommitted)
    }

    /// Short label used in reports.
    pub fn label(self) -> &'static str {
        match self {
            IsolationMode::ReadCommitted => "RC",
            IsolationMode::Snapshot => "SI",
            IsolationMode::Serializable => "SER",
            IsolationMode::StrictSerializable => "SSER",
        }
    }
}

/// Full configuration of a simulated database instance.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct DbConfig {
    /// Isolation mode of the engine.
    pub isolation: IsolationMode,
    /// Number of register keys to pre-initialize with the initial value
    /// (mirroring the `⊥T` transaction assumed by the checkers).
    pub num_keys: u64,
    /// Artificial latency added to every read/write/append operation,
    /// modelling network plus execution cost of a real DBMS.
    pub op_latency: Duration,
    /// Artificial latency added to every commit.
    pub commit_latency: Duration,
    /// Fault-injection specification (empty = behave correctly).
    pub faults: Vec<FaultSpec>,
    /// Seed for the fault-injection randomness.
    pub fault_seed: u64,
}

impl Default for DbConfig {
    fn default() -> Self {
        DbConfig {
            isolation: IsolationMode::Serializable,
            num_keys: 1000,
            op_latency: Duration::ZERO,
            commit_latency: Duration::ZERO,
            faults: Vec::new(),
            fault_seed: 0xDB,
        }
    }
}

impl DbConfig {
    /// A correct database at the given isolation level with `num_keys`
    /// pre-initialized registers and no artificial latency.
    pub fn correct(isolation: IsolationMode, num_keys: u64) -> Self {
        DbConfig {
            isolation,
            num_keys,
            ..DbConfig::default()
        }
    }

    /// Adds a latency model (builder style).
    pub fn with_latency(mut self, op: Duration, commit: Duration) -> Self {
        self.op_latency = op;
        self.commit_latency = commit;
        self
    }

    /// Adds fault injection (builder style).
    pub fn with_faults(mut self, faults: Vec<FaultSpec>, seed: u64) -> Self {
        self.faults = faults;
        self.fault_seed = seed;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mode_predicates() {
        assert!(!IsolationMode::ReadCommitted.validates_writes());
        assert!(IsolationMode::Snapshot.validates_writes());
        assert!(!IsolationMode::Snapshot.validates_reads());
        assert!(IsolationMode::Serializable.validates_reads());
        assert!(IsolationMode::StrictSerializable.validates_reads());
        assert!(IsolationMode::Snapshot.snapshot_reads());
        assert!(!IsolationMode::ReadCommitted.snapshot_reads());
    }

    #[test]
    fn builder_style_config() {
        let cfg = DbConfig::correct(IsolationMode::Snapshot, 10)
            .with_latency(Duration::from_micros(5), Duration::from_micros(10))
            .with_faults(vec![], 7);
        assert_eq!(cfg.isolation, IsolationMode::Snapshot);
        assert_eq!(cfg.num_keys, 10);
        assert_eq!(cfg.op_latency, Duration::from_micros(5));
        assert_eq!(cfg.fault_seed, 7);
    }

    #[test]
    fn labels() {
        assert_eq!(IsolationMode::Snapshot.label(), "SI");
        assert_eq!(IsolationMode::Serializable.label(), "SER");
    }

    #[test]
    fn strict_serializable_is_a_documented_alias_of_serializable() {
        // The two modes must stay behaviourally identical — if one of these
        // predicates ever diverges, the alias documentation above is a lie.
        let (a, b) = (
            IsolationMode::Serializable,
            IsolationMode::StrictSerializable,
        );
        assert_eq!(a.validates_writes(), b.validates_writes());
        assert_eq!(a.validates_reads(), b.validates_reads());
        assert_eq!(a.snapshot_reads(), b.snapshot_reads());
    }

    #[test]
    fn strict_serializable_alias_is_sound() {
        // The alias claims SSER, so the commit instants the engine reports
        // must be real-time consistent: concurrent fault-free runs under
        // either mode must pass the *strict* serializability checker, and
        // every recorded interval must be well-formed and consistent with
        // a transaction that begins after another's acknowledged commit
        // observing a later instant.
        use crate::db::Database;
        use crate::driver::ExecutionOptions;
        use mtc_workload::{generate_mt_workload, Distribution, MtWorkloadSpec};
        for mode in [
            IsolationMode::Serializable,
            IsolationMode::StrictSerializable,
        ] {
            let spec = MtWorkloadSpec {
                sessions: 4,
                txns_per_session: 60,
                num_keys: 6,
                distribution: Distribution::Uniform,
                read_only_fraction: 0.2,
                two_key_fraction: 0.5,
                seed: 0x55E2,
            };
            let db = Database::new(
                DbConfig::correct(mode, spec.num_keys)
                    .with_latency(Duration::from_micros(150), Duration::from_micros(75)),
            );
            let workload = generate_mt_workload(&spec);
            let (history, report) = ExecutionOptions::threaded().run(&db, &workload);
            assert!(report.committed > 0);
            for t in history.committed() {
                let (b, e) = (t.begin.unwrap(), t.end.unwrap());
                assert!(b <= e, "{t:?}: interval must be well-formed");
            }
            let verdict = mtc_core::check_sser(&history).unwrap();
            assert!(
                verdict.is_satisfied(),
                "{mode:?}: fault-free histories must be strictly serializable, \
                 otherwise the StrictSerializable alias is unsound: {}",
                verdict.violation().unwrap()
            );
        }
    }
}
