//! The async ingest driver: many sessions multiplexed over a small worker
//! pool.
//!
//! [`crate::execute_workload`] spends one OS thread per session — fine for
//! a handful of in-process sessions, untenable for thousands of sessions
//! against a remote backend where most of a transaction's life is waiting
//! on the wire. [`execute_workload_async`] runs every session as a future
//! on the minimal scoped executor in the `futures_lite` compat crate
//! ([`futures_lite::executor::run_all`]): `workers` threads poll all
//! session tasks cooperatively, with a scheduling point
//! ([`futures_lite::future::yield_now`]) after every operation, so
//! sessions interleave at operation granularity no matter how few workers
//! carry them.
//!
//! The retry/recording semantics are *identical* to the threaded driver —
//! both flow through [`ClientOptions::should_retry`] /
//! `ClientOptions::should_record_abort` (see the counting test pinned in
//! `client.rs`) — so a history collected asynchronously is
//! indistinguishable from a threaded one to the checkers.
//!
//! One honest caveat, documented rather than hidden: [`crate::DbTxn`]
//! operations are synchronous, so an operation that *blocks inside the
//! backend* (a 2PL lock wait, a slow remote read) parks the worker polling
//! it. The driver overlaps sessions at yield points and across `workers`
//! threads; it does not make a blocking protocol non-blocking. In
//! particular, an engine whose operations can wait on another in-flight
//! transaction ([`crate::BackendSpec::blocking`] — the 2PL engine's
//! wait-die "older waits" path) needs `workers >= sessions`, or all
//! workers can end up parked on locks whose holders' tasks are queued
//! behind them — the executor-level cousin of the restriction documented
//! on [`crate::execute_workload_interleaved`]. Non-blocking engines (the
//! simulator, weak MVCC, the remote client whose server wraps one of
//! those) run fine with far fewer workers than sessions.

use crate::backend::DbBackend;
use crate::client::{issue_ops, ClientOptions, ExecutionReport, SessionStats, TxnRecord};
use crate::live::LiveVerifier;
use futures_lite::future::yield_now;
use mtc_history::{History, HistoryBuilder, TxnStatus, ValueAllocator};
use mtc_workload::Workload;
use std::time::Instant;

/// Options of the async driver.
#[derive(Clone, Copy, Debug)]
pub struct AsyncOptions {
    /// Retry/recording options, shared with every other driver.
    pub client: ClientOptions,
    /// Executor worker threads carrying all session tasks (clamped to at
    /// least one; more than one session per worker is the point).
    pub workers: usize,
}

impl Default for AsyncOptions {
    fn default() -> Self {
        AsyncOptions {
            client: ClientOptions::default(),
            workers: 4,
        }
    }
}

/// Executes `workload` against `db` with one *task* per session on a
/// `workers`-thread executor, and returns the collected history plus
/// statistics. Sessions yield to the scheduler after every operation.
#[deprecated(
    note = "use `ExecutionOptions::async_workers(n).client(opts.client).run(db, workload)`"
)]
pub fn execute_workload_async(
    db: &dyn DbBackend,
    workload: &Workload,
    opts: &AsyncOptions,
) -> (History, ExecutionReport) {
    execute_async(db, workload, &opts.client, opts.workers, None)
}

/// The async driver proper, with an optional live verifier fed at every
/// settle point; dispatched to by [`crate::ExecutionOptions::run`] for
/// [`crate::Driver::Async`].
pub(crate) fn execute_async(
    db: &dyn DbBackend,
    workload: &Workload,
    client: &ClientOptions,
    workers: usize,
    verifier: Option<&LiveVerifier>,
) -> (History, ExecutionReport) {
    let start = Instant::now();
    type SessionLog = (u32, Vec<TxnRecord>, SessionStats);
    let tasks: Vec<futures_lite::executor::BoxedTask<'_, SessionLog>> = workload
        .sessions
        .iter()
        .map(|s| {
            let fut = run_session_async(db, s.session, &s.txns, client, verifier);
            Box::pin(fut) as futures_lite::executor::BoxedTask<'_, SessionLog>
        })
        .collect();
    let mut session_logs = futures_lite::executor::run_all(tasks, workers);
    session_logs.sort_by_key(|(s, _, _)| *s);

    let mut report = ExecutionReport {
        wall_time: start.elapsed(),
        ..ExecutionReport::default()
    };
    let mut builder = HistoryBuilder::new().with_init(workload.num_keys);
    for (_session, records, stats) in session_logs {
        report.committed += stats.committed;
        report.failed += stats.failed;
        report.attempts += stats.attempts;
        report.aborted_attempts += stats.aborted_attempts;
        for r in records {
            builder.push_timed(r.session, r.ops, r.status, r.begin, r.end);
        }
    }
    (builder.build(), report)
}

/// The async mirror of `client::run_session`: same retry accounting, same
/// recording rules, plus a yield after every single operation so sessions
/// sharing a worker interleave at operation granularity.
async fn run_session_async(
    db: &dyn DbBackend,
    session: u32,
    templates: &[mtc_workload::TxnTemplate],
    opts: &ClientOptions,
    verifier: Option<&LiveVerifier>,
) -> (u32, Vec<TxnRecord>, SessionStats) {
    let mut allocator = ValueAllocator::new(session);
    let mut records = Vec::with_capacity(templates.len());
    let mut stats = SessionStats::default();

    for template in templates {
        if verifier.is_some_and(|v| v.should_stop()) {
            break;
        }
        let mut retries = 0u32;
        let mut first_begin = None;
        loop {
            stats.attempts += 1;
            let mut handle = match first_begin {
                None => db.begin(),
                Some(ts) => db.begin_retry(ts),
            };
            let begin = handle.begin_ts();
            first_begin.get_or_insert(begin);
            yield_now().await;

            // Issue the template one operation at a time, yielding between
            // operations (the threaded driver's `issue_ops` loop, unrolled
            // around scheduling points).
            let mut ops = Vec::with_capacity(template.ops.len());
            let mut failed = None;
            for i in 0..template.ops.len() {
                let mut one = issue_ops(handle.as_mut(), &template.ops[i..i + 1], &mut allocator);
                ops.append(&mut one.ops);
                if let Some(reason) = one.failed {
                    failed = Some(reason);
                    break;
                }
                yield_now().await;
            }

            let result = match failed {
                Some(reason) => {
                    let _ = handle.abort();
                    Err(reason)
                }
                None => handle.commit(),
            };
            match result {
                Ok(info) => {
                    stats.committed += 1;
                    if let Some(v) = verifier {
                        v.record_timed(
                            session,
                            ops.clone(),
                            TxnStatus::Committed,
                            begin,
                            info.commit_ts,
                        );
                    }
                    records.push(TxnRecord {
                        session,
                        ops,
                        status: TxnStatus::Committed,
                        begin,
                        end: info.commit_ts,
                    });
                    break;
                }
                Err(reason) => {
                    stats.aborted_attempts += 1;
                    if opts.should_record_abort(&ops, reason) {
                        let end = db.now();
                        if let Some(v) = verifier {
                            v.record_timed(session, ops.clone(), TxnStatus::Aborted, begin, end);
                        }
                        records.push(TxnRecord {
                            session,
                            ops,
                            status: TxnStatus::Aborted,
                            begin,
                            end,
                        });
                    }
                    if !opts.should_retry(retries, reason) {
                        stats.failed += 1;
                        break;
                    }
                    retries += 1;
                    yield_now().await;
                }
            }
        }
    }
    (session, records, stats)
}

#[cfg(test)]
mod tests {
    use crate::backends::BackendSpec;
    use mtc_workload::{generate_mt_workload, Distribution, MtWorkloadSpec};

    fn spec(sessions: u32, txns: u32, keys: u64) -> MtWorkloadSpec {
        MtWorkloadSpec {
            sessions,
            txns_per_session: txns,
            num_keys: keys,
            distribution: Distribution::Uniform,
            read_only_fraction: 0.2,
            two_key_fraction: 0.5,
            seed: 11,
        }
    }

    /// The async driver satisfies the same invariants as the threaded one,
    /// on every fleet engine, with fewer workers than sessions (the whole
    /// point) and with more workers than sessions.
    #[test]
    fn async_driver_matches_threaded_invariants_across_the_fleet() {
        let s = spec(6, 15, 8);
        let workload = generate_mt_workload(&s);
        for backend_spec in BackendSpec::fleet(s.num_keys) {
            let db = backend_spec.build();
            for workers in [2, 8] {
                if backend_spec.blocking() && workers < 6 {
                    // A blocking engine needs workers >= sessions (see the
                    // module docs); driving it undersized would deadlock.
                    continue;
                }
                let (history, report) =
                    crate::ExecutionOptions::async_workers(workers).run(db.as_ref(), &workload);
                assert!(
                    report.committed > 0,
                    "{}: nothing committed",
                    backend_spec.label()
                );
                assert_eq!(report.committed + report.failed, workload.txn_count());
                assert_eq!(report.attempts, report.committed + report.aborted_attempts);
                assert_eq!(history.committed_count(), report.committed + 1); // + ⊥T
                assert!(history.has_init());
                assert!(
                    history.has_unique_values(),
                    "{}: duplicate write values",
                    backend_spec.label()
                );
            }
        }
    }
}
