//! Fault injection: making the simulator misbehave on purpose.
//!
//! Q4 of the paper's evaluation asks whether MTC detects isolation bugs in
//! production databases (Table II, Figures 12 and 18). We reproduce the
//! *detection* side by injecting the same classes of misbehaviour into the
//! simulated store. Each [`FaultKind`] corresponds to a concrete mechanism in
//! the transaction engine and, through it, to one or more of the documented
//! anomalies:
//!
//! | Fault | Mechanism | Reproduced bug |
//! |---|---|---|
//! | `SkipWriteValidation` | first-committer-wins is skipped for the affected transaction | `LOSTUPDATE` (MariaDB Galera) |
//! | `SkipReadValidation`  | read-set validation is skipped under a serializable engine | `WRITESKEW` / `LONGFORK` (PostgreSQL) |
//! | `StaleSnapshot`       | the transaction reads from a snapshot older than its begin point | `CAUSALITYVIOLATION` (Dgraph), session-guarantee violations |
//! | `DirtyRelease`        | the transaction's writes become visible before commit and the transaction then aborts | `ABORTEDREAD` / read-uncommitted (MongoDB, Cassandra) |
//! | `CommitTimestampSkew` | the commit timestamp *reported to the client* lags behind the install timestamp (clamped at the begin instant), as from a node with a skewed clock | stale-read-after-commit / causality reversal — invisible to SER/SI, caught only by SSER (CockroachDB-style clock-skew bugs) |
//!
//! Each fault fires per transaction with the configured probability, so bug
//! density (and therefore the "counterexample position" of Table II) is
//! controllable.

use rand::rngs::StdRng;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// The injectable fault classes.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum FaultKind {
    /// Skip first-committer-wins write validation → lost updates.
    SkipWriteValidation,
    /// Skip commit-time read validation → write skew, long fork.
    SkipReadValidation,
    /// Read from a stale snapshot (ignoring the most recent committed
    /// versions) → causality violations, non-monotonic/session anomalies.
    StaleSnapshot,
    /// Publish writes before commit and then abort → aborted reads /
    /// read-uncommitted behaviour.
    DirtyRelease,
    /// Report a commit timestamp older than the actual install timestamp
    /// (never older than the transaction's begin, keeping the interval
    /// self-consistent) → real-time-order violations visible only to the
    /// strict-serializability checker.
    CommitTimestampSkew,
}

impl FaultKind {
    /// Human-readable label.
    pub fn label(self) -> &'static str {
        match self {
            FaultKind::SkipWriteValidation => "skip-write-validation",
            FaultKind::SkipReadValidation => "skip-read-validation",
            FaultKind::StaleSnapshot => "stale-snapshot",
            FaultKind::DirtyRelease => "dirty-release",
            FaultKind::CommitTimestampSkew => "commit-ts-skew",
        }
    }
}

/// A fault plus its per-transaction firing probability.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct FaultSpec {
    /// What to inject.
    pub kind: FaultKind,
    /// Probability (0.0–1.0) that a given transaction is affected.
    pub probability: f64,
}

impl FaultSpec {
    /// Convenience constructor.
    pub fn new(kind: FaultKind, probability: f64) -> Self {
        FaultSpec {
            kind,
            probability: probability.clamp(0.0, 1.0),
        }
    }
}

/// The faults that fire for one particular transaction.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ActiveFaults {
    /// Write validation disabled for this transaction.
    pub skip_write_validation: bool,
    /// Read validation disabled for this transaction.
    pub skip_read_validation: bool,
    /// Number of most-recent versions to ignore when reading (0 = none).
    pub stale_versions: usize,
    /// Publish writes eagerly and abort at commit.
    pub dirty_release: bool,
    /// How many ticks the *reported* commit timestamp lags behind the
    /// install timestamp (0 = none; always clamped at the begin instant).
    pub commit_ts_skew: u64,
}

impl ActiveFaults {
    /// Draws the set of active faults for a fresh transaction.
    pub fn draw(specs: &[FaultSpec], rng: &mut StdRng) -> Self {
        let mut active = ActiveFaults::default();
        for spec in specs {
            if rng.gen::<f64>() >= spec.probability {
                continue;
            }
            match spec.kind {
                FaultKind::SkipWriteValidation => active.skip_write_validation = true,
                FaultKind::SkipReadValidation => active.skip_read_validation = true,
                FaultKind::StaleSnapshot => active.stale_versions = 1 + rng.gen_range(0..2),
                FaultKind::DirtyRelease => active.dirty_release = true,
                FaultKind::CommitTimestampSkew => active.commit_ts_skew = 8 + rng.gen_range(0..24),
            }
        }
        active
    }

    /// True iff no fault fired.
    pub fn is_clean(&self) -> bool {
        *self == ActiveFaults::default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn zero_probability_never_fires() {
        let specs = vec![
            FaultSpec::new(FaultKind::SkipWriteValidation, 0.0),
            FaultSpec::new(FaultKind::DirtyRelease, 0.0),
        ];
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..100 {
            assert!(ActiveFaults::draw(&specs, &mut rng).is_clean());
        }
    }

    #[test]
    fn full_probability_always_fires() {
        let specs = vec![
            FaultSpec::new(FaultKind::SkipReadValidation, 1.0),
            FaultSpec::new(FaultKind::StaleSnapshot, 1.0),
        ];
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..100 {
            let a = ActiveFaults::draw(&specs, &mut rng);
            assert!(a.skip_read_validation);
            assert!(a.stale_versions >= 1);
            assert!(!a.is_clean());
        }
    }

    #[test]
    fn probability_is_clamped() {
        let spec = FaultSpec::new(FaultKind::DirtyRelease, 7.0);
        assert_eq!(spec.probability, 1.0);
        let spec = FaultSpec::new(FaultKind::DirtyRelease, -3.0);
        assert_eq!(spec.probability, 0.0);
    }

    #[test]
    fn intermediate_probability_fires_sometimes() {
        let specs = vec![FaultSpec::new(FaultKind::SkipWriteValidation, 0.3)];
        let mut rng = StdRng::seed_from_u64(3);
        let fired = (0..1000)
            .filter(|_| ActiveFaults::draw(&specs, &mut rng).skip_write_validation)
            .count();
        assert!((200..400).contains(&fired), "fired {fired} times");
    }

    #[test]
    fn labels() {
        assert_eq!(FaultKind::StaleSnapshot.label(), "stale-snapshot");
        assert_eq!(FaultKind::CommitTimestampSkew.label(), "commit-ts-skew");
    }

    #[test]
    fn commit_timestamp_skew_draws_a_bounded_lag() {
        let specs = vec![FaultSpec::new(FaultKind::CommitTimestampSkew, 1.0)];
        let mut rng = StdRng::seed_from_u64(11);
        for _ in 0..200 {
            let a = ActiveFaults::draw(&specs, &mut rng);
            assert!(
                (8..32).contains(&a.commit_ts_skew),
                "skew {} out of range",
                a.commit_ts_skew
            );
            assert!(!a.is_clean());
        }
        // With probability 0 the clock stays honest.
        let specs = vec![FaultSpec::new(FaultKind::CommitTimestampSkew, 0.0)];
        for _ in 0..100 {
            assert_eq!(ActiveFaults::draw(&specs, &mut rng).commit_ts_skew, 0);
        }
    }
}
